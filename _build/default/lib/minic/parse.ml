type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Tint of int
  | Tfloat of float
  | Tident of string
  | Tstring of string
  | Tpunct of string  (* operators and punctuation *)
  | Teof

type lexed = { tok : token; tline : int }

let keywords_punct =
  (* longest first so the scanner is greedy *)
  [
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "->"; "++";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "="; "<"; ">"; "+"; "-"; "*";
    "/"; "%"; "!"; "&"; "|"; "^";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let lex (src : string) : lexed list =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; tline = !line } :: !out in
  let rec go k =
    if k >= n then emit Teof
    else
      let c = src.[k] in
      if c = '\n' then begin
        incr line;
        go (k + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (k + 1)
      else if c = '/' && k + 1 < n && src.[k + 1] = '*' then begin
        (* block comment *)
        let j = ref (k + 2) in
        while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do
          if src.[!j] = '\n' then incr line;
          incr j
        done;
        if !j + 1 >= n then
          raise (Parse_error { line = !line; message = "unterminated comment" });
        go (!j + 2)
      end
      else if c = '/' && k + 1 < n && src.[k + 1] = '/' then begin
        let j = ref (k + 2) in
        while !j < n && src.[!j] <> '\n' do
          incr j
        done;
        go !j
      end
      else if c = '"' then begin
        let j = ref (k + 1) in
        while !j < n && src.[!j] <> '"' do
          incr j
        done;
        if !j >= n then raise (Parse_error { line = !line; message = "unterminated string" });
        emit (Tstring (String.sub src (k + 1) (!j - k - 1)));
        go (!j + 1)
      end
      else if is_digit c then begin
        let j = ref k in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        if !j < n && src.[!j] = '.' then begin
          incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          emit (Tfloat (float_of_string (String.sub src k (!j - k))))
        end
        else emit (Tint (int_of_string (String.sub src k (!j - k))));
        go !j
      end
      else if is_ident_start c then begin
        let j = ref k in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        emit (Tident (String.sub src k (!j - k)));
        go !j
      end
      else begin
        match
          List.find_opt
            (fun p ->
              let lp = String.length p in
              k + lp <= n && String.sub src k lp = p)
            keywords_punct
        with
        | Some p ->
          emit (Tpunct p);
          go (k + String.length p)
        | None ->
          raise
            (Parse_error
               { line = !line; message = Printf.sprintf "unexpected character %C" c })
      end
  in
  go 0;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : lexed list }

let peek st = match st.toks with t :: _ -> t | [] -> { tok = Teof; tline = 0 }

let peek2 st =
  match st.toks with _ :: t :: _ -> t.tok | _ -> Teof

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st message = raise (Parse_error { line = (peek st).tline; message })

let eat_punct st p =
  match (peek st).tok with
  | Tpunct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_ident st name =
  match (peek st).tok with
  | Tident i when i = name -> advance st
  | _ -> fail st (Printf.sprintf "expected %S" name)

let any_ident st =
  match (peek st).tok with
  | Tident i ->
    advance st;
    i
  | _ -> fail st "expected an identifier"

let try_punct st p =
  match (peek st).tok with
  | Tpunct q when q = p ->
    advance st;
    true
  | _ -> false

let is_ident st name =
  match (peek st).tok with Tident i -> i = name | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let binop_of_punct = function
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "&" -> Some (Ast.Bitand, 5)
  | "^" -> Some (Ast.Bitxor, 4)
  | "|" -> Some (Ast.Bitor, 3)
  | "&&" -> Some (Ast.Logand, 2)
  | "||" -> Some (Ast.Logor, 1)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek st).tok with
    | Tpunct p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Ast.Binop (op, !lhs, rhs)
      | Some _ | None -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  if try_punct st "!" then Ast.Unop (Ast.Lognot, parse_unary st)
  else if try_punct st "-" then Ast.Unop (Ast.Neg, parse_unary st)
  else parse_primary st

and parse_primary st =
  match (peek st).tok with
  | Tint n ->
    advance st;
    Ast.Int n
  | Tfloat x ->
    advance st;
    Ast.Float x
  | Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Tident "len" when peek2 st = Tpunct "(" ->
    advance st;
    eat_punct st "(";
    let name = any_ident st in
    eat_punct st ")";
    Ast.Len name
  | Tident "sizeof" when peek2 st = Tpunct "(" ->
    (* sizeof(t) reads as the element count 1: malloc(n * sizeof(int))
       allocates n cells *)
    advance st;
    eat_punct st "(";
    let _ = any_ident st in
    eat_punct st ")";
    Ast.Int 1
  | Tident name -> (
    advance st;
    match (peek st).tok with
    | Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      Ast.Idx (name, idx)
    | _ -> Ast.Var name)
  | Tstring _ -> fail st "string literal in expression position"
  | Tpunct p -> fail st (Printf.sprintf "unexpected %S in expression" p)
  | Teof -> fail st "unexpected end of input in expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_comm st =
  let name = any_ident st in
  if name = "MPI_COMM_WORLD" then Ast.World else Ast.Comm_var name

let parse_amp_ident st =
  eat_punct st "&";
  any_ident st

let parse_amp_lval st =
  eat_punct st "&";
  let name = any_ident st in
  if try_punct st "[" then begin
    let idx = parse_expr st in
    eat_punct st "]";
    Ast.Lidx (name, idx)
  end
  else Ast.Lvar name

let parse_src_or_any st =
  if is_ident st "MPI_ANY" then begin
    advance st;
    None
  end
  else Some (parse_expr st)

let reduce_op st =
  match any_ident st with
  | "MPI_SUM" -> Ast.Op_sum
  | "MPI_PROD" -> Ast.Op_prod
  | "MPI_MAX" -> Ast.Op_max
  | "MPI_MIN" -> Ast.Op_min
  | other -> fail st (Printf.sprintf "unknown reduce op %S" other)

(* "malloc( expr )" where sizeof(t) inside the expression reads as 1 —
   so the pretty-printer's "malloc((n) * sizeof(int))" yields n cells. *)
let parse_malloc_size st =
  eat_ident st "malloc";
  eat_punct st "(";
  let e = parse_expr st in
  eat_punct st ")";
  e

let rec parse_block st =
  eat_punct st "{";
  let stmts = ref [] in
  while not (try_punct st "}") do
    stmts := List.rev_append (parse_stmt st) !stmts
  done;
  List.rev !stmts

(* one source statement can desugar to several AST statements (for) *)
and parse_stmt st : Ast.stmt list =
  match (peek st).tok with
  | Tpunct ";" ->
    advance st;
    [ Ast.Nop ]
  | Tident ("int" | "double") -> parse_decl st
  | Tident "if" -> [ parse_if st ]
  | Tident "while" -> [ parse_while st ]
  | Tident "for" -> parse_for st
  | Tident "return" ->
    advance st;
    if try_punct st ";" then [ Ast.Return None ]
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      [ Ast.Return (Some e) ]
    end
  | Tident "assert" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Assert (cond, "assert") ]
  | Tident "sanity" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    [
      Ast.If
        {
          id = Ast.unassigned_id;
          cond = Ast.Unop (Ast.Lognot, cond);
          then_ = [ Ast.Exit (Ast.Int 1) ];
          else_ = [];
        };
    ]
  | Tident "abort" ->
    advance st;
    eat_punct st "(";
    let message =
      match (peek st).tok with
      | Tstring s ->
        advance st;
        s
      | _ -> "abort"
    in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Abort message ]
  | Tident "exit" ->
    advance st;
    eat_punct st "(";
    let code = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Exit code ]
  | Tident "COMPI_int" ->
    advance st;
    eat_punct st "(";
    let name = parse_amp_ident st in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Input { iname = name; cap = None; lo = None; default = 0 } ]
  | Tident "COMPI_int_with_limit" ->
    advance st;
    eat_punct st "(";
    let name = parse_amp_ident st in
    eat_punct st ",";
    let cap = parse_int st in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Input { iname = name; cap = Some cap; lo = None; default = 0 } ]
  | Tident "COMPI_int_range" ->
    advance st;
    eat_punct st "(";
    let name = parse_amp_ident st in
    eat_punct st ",";
    let lo = parse_int st in
    eat_punct st ",";
    let cap = parse_int st in
    eat_punct st ",";
    let default = parse_int st in
    eat_punct st ")";
    eat_punct st ";";
    [ Ast.Input { iname = name; cap = Some cap; lo = Some lo; default } ]
  | Tident name when String.length name > 4 && String.sub name 0 4 = "MPI_" ->
    [ parse_mpi st name ]
  | Tident name -> (
    advance st;
    match (peek st).tok with
    | Tpunct "(" ->
      (* statement call *)
      let args = parse_args st in
      eat_punct st ";";
      [ Ast.Call (name, args) ]
    | Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      eat_punct st "=";
      let e = parse_expr st in
      eat_punct st ";";
      [ Ast.Assign (Ast.Lidx (name, idx), e) ]
    | Tpunct "=" -> (
      advance st;
      (* call-assign when "ident (" follows and ident is not a builtin *)
      match ((peek st).tok, peek2 st) with
      | Tident callee, Tpunct "("
        when callee <> "len" && callee <> "malloc" && callee <> "sizeof" ->
        advance st;
        let args = parse_args st in
        eat_punct st ";";
        [ Ast.Call_assign (name, callee, args) ]
      | _ ->
        let e = parse_expr st in
        eat_punct st ";";
        [ Ast.Assign (Ast.Lvar name, e) ])
    | _ -> fail st (Printf.sprintf "unexpected token after %S" name))
  | Tint _ | Tfloat _ | Tstring _ -> fail st "statement cannot start with a literal"
  | Tpunct p -> fail st (Printf.sprintf "unexpected %S" p)
  | Teof -> fail st "unexpected end of input"

and parse_int st =
  let neg = try_punct st "-" in
  match (peek st).tok with
  | Tint n ->
    advance st;
    if neg then -n else n
  | _ -> fail st "expected an integer literal"

and parse_args st =
  eat_punct st "(";
  if try_punct st ")" then []
  else begin
    let args = ref [ parse_expr st ] in
    while try_punct st "," do
      args := parse_expr st :: !args
    done;
    eat_punct st ")";
    List.rev !args
  end

and parse_decl st =
  let ctype =
    match any_ident st with
    | "int" -> Ast.Tint
    | "double" -> Ast.Tfloat
    | _ -> fail st "expected a type"
  in
  if try_punct st "*" then begin
    (* array declaration via malloc *)
    let name = any_ident st in
    eat_punct st "=";
    let size = parse_malloc_size st in
    eat_punct st ";";
    [ Ast.Decl_arr (name, ctype, size) ]
  end
  else begin
    let name = any_ident st in
    eat_punct st "=";
    let e = parse_expr st in
    eat_punct st ";";
    [ Ast.Decl (name, ctype, e) ]
  end

and parse_if st =
  eat_ident st "if";
  eat_punct st "(";
  let cond = parse_expr st in
  eat_punct st ")";
  let then_ = parse_block st in
  let else_ = if is_ident st "else" then (advance st; parse_block st) else [] in
  Ast.If { id = Ast.unassigned_id; cond; then_; else_ }

and parse_while st =
  eat_ident st "while";
  eat_punct st "(";
  let cond = parse_expr st in
  eat_punct st ")";
  let body = parse_block st in
  Ast.While { id = Ast.unassigned_id; cond; body }

and parse_for st =
  (* for (int x = lo; x < hi; x++) block   — Builder.for_ sugar *)
  eat_ident st "for";
  eat_punct st "(";
  eat_ident st "int";
  let x = any_ident st in
  eat_punct st "=";
  let lo = parse_expr st in
  eat_punct st ";";
  eat_ident st x;
  eat_punct st "<";
  let hi = parse_expr st in
  eat_punct st ";";
  eat_ident st x;
  eat_punct st "++";
  eat_punct st ")";
  let body = parse_block st in
  [
    Ast.Decl (x, Ast.Tint, lo);
    Ast.While
      {
        id = Ast.unassigned_id;
        cond = Ast.Binop (Ast.Lt, Ast.Var x, hi);
        body = body @ [ Ast.Assign (Ast.Lvar x, Ast.Binop (Ast.Add, Ast.Var x, Ast.Int 1)) ];
      };
  ]

and parse_mpi st name : Ast.stmt =
  advance st;
  eat_punct st "(";
  let finish stmt =
    eat_punct st ")";
    eat_punct st ";";
    Ast.Mpi stmt
  in
  match name with
  | "MPI_Comm_rank" ->
    let comm = parse_comm st in
    eat_punct st ",";
    let var = parse_amp_ident st in
    finish (Ast.Comm_rank (comm, var))
  | "MPI_Comm_size" ->
    let comm = parse_comm st in
    eat_punct st ",";
    let var = parse_amp_ident st in
    finish (Ast.Comm_size (comm, var))
  | "MPI_Comm_split" ->
    let comm = parse_comm st in
    eat_punct st ",";
    let color = parse_expr st in
    eat_punct st ",";
    let key = parse_expr st in
    eat_punct st ",";
    let into = parse_amp_ident st in
    finish (Ast.Comm_split { comm; color; key; into })
  | "MPI_Barrier" ->
    let comm = parse_comm st in
    finish (Ast.Barrier comm)
  | "MPI_Send" ->
    let data = parse_expr st in
    eat_punct st ",";
    let dest = parse_expr st in
    eat_punct st ",";
    let tag = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Send { comm; dest; tag; data })
  | "MPI_Recv" ->
    let into = parse_amp_lval st in
    eat_punct st ",";
    let src = parse_src_or_any st in
    eat_punct st ",";
    let tag = parse_src_or_any st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Recv { comm; src; tag; into })
  | "MPI_Isend" ->
    let data = parse_expr st in
    eat_punct st ",";
    let dest = parse_expr st in
    eat_punct st ",";
    let tag = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    eat_punct st ",";
    let req = parse_amp_ident st in
    finish (Ast.Isend { comm; dest; tag; data; req })
  | "MPI_Irecv" ->
    let src = parse_src_or_any st in
    eat_punct st ",";
    let tag = parse_src_or_any st in
    eat_punct st ",";
    let comm = parse_comm st in
    eat_punct st ",";
    let req = parse_amp_ident st in
    finish (Ast.Irecv { comm; src; tag; req })
  | "MPI_Wait" ->
    eat_punct st "&";
    let req = parse_expr st in
    let into = if try_punct st "->" then Some (parse_amp_lval st) else None in
    finish (Ast.Wait { req; into })
  | "MPI_Bcast" ->
    let data = parse_amp_lval st in
    eat_punct st ",";
    let root = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Bcast { comm; root; data })
  | "MPI_Reduce" ->
    let data = parse_expr st in
    eat_punct st ",";
    let into = parse_amp_lval st in
    eat_punct st ",";
    let op = reduce_op st in
    eat_punct st ",";
    let root = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Reduce { comm; op; root; data; into })
  | "MPI_Allreduce" ->
    let data = parse_expr st in
    eat_punct st ",";
    let into = parse_amp_lval st in
    eat_punct st ",";
    let op = reduce_op st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Allreduce { comm; op; data; into })
  | "MPI_Gather" ->
    let data = parse_expr st in
    eat_punct st ",";
    let into = any_ident st in
    eat_punct st ",";
    let root = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Gather { comm; root; data; into })
  | "MPI_Scatter" ->
    let data = any_ident st in
    eat_punct st ",";
    let into = parse_amp_lval st in
    eat_punct st ",";
    let root = parse_expr st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Scatter { comm; root; data; into })
  | "MPI_Allgather" ->
    let data = parse_expr st in
    eat_punct st ",";
    let into = any_ident st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Allgather { comm; data; into })
  | "MPI_Alltoall" ->
    let data = any_ident st in
    eat_punct st ",";
    let into = any_ident st in
    eat_punct st ",";
    let comm = parse_comm st in
    finish (Ast.Alltoall { comm; data; into })
  | other -> fail st (Printf.sprintf "unknown MPI call %S" other)

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let parse_func st =
  eat_ident st "int";
  let fname = any_ident st in
  eat_punct st "(";
  let params = ref [] in
  if not (try_punct st ")") then begin
    let param () =
      let ctype =
        match any_ident st with
        | "int" -> Ast.Tint
        | "double" -> Ast.Tfloat
        | _ -> fail st "expected a parameter type"
      in
      let name = any_ident st in
      (name, ctype)
    in
    params := [ param () ];
    while try_punct st "," do
      params := param () :: !params
    done;
    eat_punct st ")"
  end;
  let body = parse_block st in
  { Ast.fname; params = List.rev !params; body }

let program_of_state st =
  let funcs = ref [] in
  while (peek st).tok <> Teof do
    funcs := parse_func st :: !funcs
  done;
  { Ast.funcs = List.rev !funcs; entry = "main" }

let run_parser f src =
  match f { toks = lex src } with
  | result -> Ok result
  | exception Parse_error e -> Error e

let program src = run_parser program_of_state src

let program_exn src =
  match program src with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Minic.Parse: %a" pp_error e)

let expr src =
  run_parser
    (fun st ->
      let e = parse_expr st in
      match (peek st).tok with
      | Teof -> e
      | _ -> fail st "trailing input after expression")
    src
