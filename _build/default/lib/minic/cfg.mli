(** Static control-flow graph over conditionals.

    Supports the CFG-directed search strategy of CREST that COMPI
    compares against in Figure 4: each branch is scored by the shortest
    static distance (in conditionals) to any still-uncovered branch.
    The graph is an over-approximation — function calls link to the
    callee's entry conditionals and a [Return] ends the local path —
    which matches the precision the strategy needs. *)

type t

val build : Branchinfo.t -> t

val nconds : t -> int

val successors : t -> cond:int -> taken:bool -> int list
(** Conditionals that can be reached next after taking one direction. *)

val distances : t -> uncovered:(int -> bool) -> int array
(** [distances g ~uncovered] has one entry per branch id ([2c] and
    [2c+1]): 0 for an uncovered branch, otherwise 1 + the minimum over
    the successors of its direction, [max_int] when no uncovered branch
    is reachable. [uncovered] is queried on branch ids. *)
