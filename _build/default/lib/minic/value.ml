(* Runtime values of Mini-C programs, and the message payloads carried by
   the MPI simulator. *)

type t =
  | Vint of int
  | Vfloat of float
  | Varr_int of int array
  | Varr_float of float array

let type_name = function
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Varr_int _ -> "int[]"
  | Varr_float _ -> "float[]"

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Varr_int x, Varr_int y -> x = y
  | Varr_float x, Varr_float y ->
    Array.length x = Array.length y
    && Array.for_all2 Float.equal x y
  | (Vint _ | Vfloat _ | Varr_int _ | Varr_float _), _ -> false

let pp ppf = function
  | Vint n -> Format.fprintf ppf "%d" n
  | Vfloat f -> Format.fprintf ppf "%g" f
  | Varr_int a ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Format.pp_print_int)
      (Array.to_seq a)
  | Varr_float a ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf f -> Format.fprintf ppf "%g" f))
      (Array.to_seq a)

(* Approximate wire size in bytes, used for log-size accounting. *)
let byte_size = function
  | Vint _ -> 8
  | Vfloat _ -> 8
  | Varr_int a -> 8 * Array.length a
  | Varr_float a -> 8 * Array.length a

(* Deep copy so that message payloads do not alias sender state. *)
let copy = function
  | Vint n -> Vint n
  | Vfloat f -> Vfloat f
  | Varr_int a -> Varr_int (Array.copy a)
  | Varr_float a -> Varr_float (Array.copy a)
