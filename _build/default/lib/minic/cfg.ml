module Sset = Set.Make (String)

type t = {
  nconds : int;
  succ_true : int list array;
  succ_false : int list array;
}

let nconds g = g.nconds

let successors g ~cond ~taken = if taken then g.succ_true.(cond) else g.succ_false.(cond)

(* Entry conditionals of every function: the conditionals that can be the
   first one executed when the function is called. Computed as a
   fixpoint to tolerate (mutual) recursion. *)
let entry_conds_table (program : Ast.program) =
  let table : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let in_progress = ref Sset.empty in
  let rec of_func name =
    match Hashtbl.find_opt table name with
    | Some ids -> ids
    | None ->
      if Sset.mem name !in_progress then []
      else begin
        in_progress := Sset.add name !in_progress;
        let ids =
          match Ast.find_func program name with
          | None -> []
          | Some fn -> of_block fn.Ast.body
        in
        in_progress := Sset.remove name !in_progress;
        Hashtbl.replace table name ids;
        ids
      end
  and of_block (block : Ast.block) =
    match block with
    | [] -> []
    | stmt :: rest -> (
      match stmt with
      | Ast.If { id; _ } | Ast.While { id; _ } -> [ id ]
      | Ast.Call (name, _) | Ast.Call_assign (_, name, _) -> (
        match of_func name with [] -> of_block rest | ids -> ids)
      | Ast.Return _ | Ast.Abort _ | Ast.Exit _ -> []
      | Ast.Decl _ | Ast.Decl_arr _ | Ast.Assign _ | Ast.Assert _ | Ast.Input _
      | Ast.Mpi _ | Ast.Nop ->
        of_block rest)
  in
  List.iter (fun (fn : Ast.func) -> ignore (of_func fn.Ast.fname)) program.Ast.funcs;
  (table, of_func)

let build (info : Branchinfo.t) =
  let program = info.Branchinfo.program in
  let n = info.Branchinfo.total_conditionals in
  let succ_true = Array.make n [] in
  let succ_false = Array.make n [] in
  let _, entry_conds = entry_conds_table program in
  (* firsts_of_block computes the conditionals that can run first in a
     block followed by [cont]; as a side effect it records the successor
     edges of every conditional inside the block. *)
  let rec firsts_of_block block cont =
    match block with
    | [] -> cont
    | stmt :: rest -> (
      let next = lazy (firsts_of_block rest cont) in
      match stmt with
      | Ast.If { id; then_; else_; _ } ->
        succ_true.(id) <- firsts_of_block then_ (Lazy.force next);
        succ_false.(id) <- firsts_of_block else_ (Lazy.force next);
        [ id ]
      | Ast.While { id; body; _ } ->
        succ_true.(id) <- firsts_of_block body [ id ];
        succ_false.(id) <- Lazy.force next;
        [ id ]
      | Ast.Call (name, _) | Ast.Call_assign (_, name, _) -> (
        match entry_conds name with [] -> Lazy.force next | ids -> ids)
      | Ast.Return _ | Ast.Abort _ | Ast.Exit _ -> []
      | Ast.Decl _ | Ast.Decl_arr _ | Ast.Assign _ | Ast.Assert _ | Ast.Input _
      | Ast.Mpi _ | Ast.Nop ->
        Lazy.force next)
  in
  List.iter
    (fun (fn : Ast.func) -> ignore (firsts_of_block fn.Ast.body []))
    program.Ast.funcs;
  { nconds = n; succ_true; succ_false }

let distances g ~uncovered =
  let n = 2 * g.nconds in
  let dist = Array.make n max_int in
  for b = 0 to n - 1 do
    if uncovered b then dist.(b) <- 0
  done;
  (* Bellman-style relaxation to a fixpoint; the graph is small. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to g.nconds - 1 do
      let relax b succs =
        if dist.(b) > 0 then begin
          let best =
            List.fold_left
              (fun acc c' ->
                let d = min dist.(2 * c') dist.((2 * c') + 1) in
                min acc d)
              max_int succs
          in
          if best < max_int && best + 1 < dist.(b) then begin
            dist.(b) <- best + 1;
            changed := true
          end
        end
      in
      relax (2 * c) g.succ_true.(c);
      relax ((2 * c) + 1) g.succ_false.(c)
    done
  done;
  dist
