let bool_int b = if b then 1 else 0

let fold_int_binop (op : Ast.binop) x y =
  match op with
  | Ast.Add -> Some (x + y)
  | Ast.Sub -> Some (x - y)
  | Ast.Mul -> Some (x * y)
  | Ast.Div -> if y = 0 then None else Some (x / y)
  | Ast.Mod -> if y = 0 then None else Some (x mod y)
  | Ast.Eq -> Some (bool_int (x = y))
  | Ast.Ne -> Some (bool_int (x <> y))
  | Ast.Lt -> Some (bool_int (x < y))
  | Ast.Le -> Some (bool_int (x <= y))
  | Ast.Gt -> Some (bool_int (x > y))
  | Ast.Ge -> Some (bool_int (x >= y))
  | Ast.Logand -> Some (bool_int (x <> 0 && y <> 0))
  | Ast.Logor -> Some (bool_int (x <> 0 || y <> 0))
  | Ast.Bitand -> Some (x land y)
  | Ast.Bitor -> Some (x lor y)
  | Ast.Bitxor -> Some (x lxor y)
  | Ast.Shl -> Some (x lsl (y land 62))
  | Ast.Shr -> Some (x asr (y land 62))

let rec fold_expr (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ | Ast.Float _ | Ast.Var _ | Ast.Len _ -> e
  | Ast.Idx (name, ie) -> Ast.Idx (name, fold_expr ie)
  | Ast.Unop (op, e1) -> (
    match (op, fold_expr e1) with
    | Ast.Neg, Ast.Int n -> Ast.Int (-n)
    | Ast.Neg, Ast.Float x -> Ast.Float (-.x)
    | Ast.Lognot, Ast.Int n -> Ast.Int (bool_int (n = 0))
    | op, e1' -> Ast.Unop (op, e1'))
  | Ast.Binop (op, a, b) -> (
    let a' = fold_expr a and b' = fold_expr b in
    match (a', b') with
    | Ast.Int x, Ast.Int y -> (
      match fold_int_binop op x y with
      | Some r -> Ast.Int r
      | None -> Ast.Binop (op, a', b')  (* trapping division: keep *)
      )
    | _, _ -> Ast.Binop (op, a', b'))

let rec simplify_block (block : Ast.block) : Ast.block =
  List.concat_map simplify_stmt block

and simplify_stmt (stmt : Ast.stmt) : Ast.block =
  match stmt with
  | Ast.Nop -> []
  | Ast.Decl (name, ctype, e) -> [ Ast.Decl (name, ctype, fold_expr e) ]
  | Ast.Decl_arr (name, ctype, e) -> [ Ast.Decl_arr (name, ctype, fold_expr e) ]
  | Ast.Assign (lv, e) -> [ Ast.Assign (simplify_lval lv, fold_expr e) ]
  | Ast.If { id; cond; then_; else_ } -> (
    match fold_expr cond with
    | Ast.Int 0 -> simplify_block else_
    | Ast.Int _ -> simplify_block then_
    | cond ->
      [ Ast.If { id; cond; then_ = simplify_block then_; else_ = simplify_block else_ } ])
  | Ast.While { id; cond; body } -> (
    match fold_expr cond with
    | Ast.Int 0 -> []
    | cond -> [ Ast.While { id; cond; body = simplify_block body } ])
  | Ast.Call (name, args) -> [ Ast.Call (name, List.map fold_expr args) ]
  | Ast.Call_assign (dst, name, args) ->
    [ Ast.Call_assign (dst, name, List.map fold_expr args) ]
  | Ast.Return e -> [ Ast.Return (Option.map fold_expr e) ]
  | Ast.Assert (cond, msg) -> (
    match fold_expr cond with
    | Ast.Int n when n <> 0 -> []  (* statically true *)
    | cond -> [ Ast.Assert (cond, msg) ])
  | Ast.Abort _ | Ast.Input _ -> [ stmt ]
  | Ast.Exit e -> [ Ast.Exit (fold_expr e) ]
  | Ast.Mpi m -> [ Ast.Mpi (simplify_mpi m) ]

and simplify_lval (lv : Ast.lval) =
  match lv with
  | Ast.Lvar _ -> lv
  | Ast.Lidx (name, e) -> Ast.Lidx (name, fold_expr e)

and simplify_mpi (m : Ast.mpi) : Ast.mpi =
  let e = fold_expr in
  match m with
  | Ast.Comm_rank _ | Ast.Comm_size _ -> m
  | Ast.Comm_split { comm; color; key; into } ->
    Ast.Comm_split { comm; color = e color; key = e key; into }
  | Ast.Barrier _ -> m
  | Ast.Send { comm; dest; tag; data } ->
    Ast.Send { comm; dest = e dest; tag = e tag; data = e data }
  | Ast.Recv { comm; src; tag; into } ->
    Ast.Recv { comm; src = Option.map e src; tag = Option.map e tag; into = simplify_lval into }
  | Ast.Isend { comm; dest; tag; data; req } ->
    Ast.Isend { comm; dest = e dest; tag = e tag; data = e data; req }
  | Ast.Irecv { comm; src; tag; req } ->
    Ast.Irecv { comm; src = Option.map e src; tag = Option.map e tag; req }
  | Ast.Wait { req; into } ->
    Ast.Wait { req = e req; into = Option.map simplify_lval into }
  | Ast.Bcast { comm; root; data } -> Ast.Bcast { comm; root = e root; data = simplify_lval data }
  | Ast.Reduce { comm; op; root; data; into } ->
    Ast.Reduce { comm; op; root = e root; data = e data; into = simplify_lval into }
  | Ast.Allreduce { comm; op; data; into } ->
    Ast.Allreduce { comm; op; data = e data; into = simplify_lval into }
  | Ast.Gather { comm; root; data; into } ->
    Ast.Gather { comm; root = e root; data = e data; into }
  | Ast.Scatter { comm; root; data; into } ->
    Ast.Scatter { comm; root = e root; data; into = simplify_lval into }
  | Ast.Allgather { comm; data; into } -> Ast.Allgather { comm; data = e data; into }
  | Ast.Alltoall _ -> m

let simplify_program (program : Ast.program) =
  {
    program with
    Ast.funcs =
      List.map
        (fun (fn : Ast.func) -> { fn with Ast.body = simplify_block fn.Ast.body })
        program.Ast.funcs;
  }
