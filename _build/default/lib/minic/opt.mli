(** Constant folding and dead-branch elimination.

    The front-end clean-up CIL performs before instrumentation: literal
    arithmetic is folded and conditionals with literal conditions are
    replaced by the surviving arm, so the branch census reflects real
    decisions only. Run {e before} {!Branchinfo.instrument}.

    The pass is conservative about faults: expressions that can trap at
    runtime (division or modulo by a literal zero, array accesses) are
    never folded away, and only literal-on-both-sides operations fold,
    so observable behaviour is preserved exactly. *)

val fold_expr : Ast.expr -> Ast.expr
val simplify_block : Ast.block -> Ast.block
val simplify_program : Ast.program -> Ast.program
