type kind =
  | Program_input of string
  | Rank_world
  | Rank_comm of int
  | Size_world
  | Size_comm of int

type entry = {
  var : Smt.Varid.t;
  kind : kind;
  lo : int option;
  hi : int option;
  concrete : int;
  comm_size : int option;
}

type t = {
  gen : Smt.Varid.gen;
  mutable entries_rev : entry list;
  by_name : (string, entry) Hashtbl.t;
  by_var : (Smt.Varid.t, entry) Hashtbl.t;
}

let create () =
  {
    gen = Smt.Varid.make_gen ();
    entries_rev = [];
    by_name = Hashtbl.create 16;
    by_var = Hashtbl.create 16;
  }

let register t entry =
  t.entries_rev <- entry :: t.entries_rev;
  Hashtbl.replace t.by_var entry.var entry;
  entry.var

let fresh_input t ~name ?lo ?hi ~concrete () =
  match Hashtbl.find_opt t.by_name name with
  | Some e -> e.var
  | None ->
    let entry =
      {
        var = Smt.Varid.fresh t.gen;
        kind = Program_input name;
        lo;
        hi;
        concrete;
        comm_size = None;
      }
    in
    Hashtbl.replace t.by_name name entry;
    register t entry

let fresh_sem t ~kind ?comm_size ~concrete () =
  let lo, hi =
    match kind with
    | Rank_world | Rank_comm _ | Size_comm _ -> (Some 0, None)
    | Size_world -> (Some 1, None)
    | Program_input _ -> (None, None)
  in
  register t
    { var = Smt.Varid.fresh t.gen; kind; lo; hi; concrete; comm_size }

let entries t = List.rev t.entries_rev
let find_input t name = Hashtbl.find_opt t.by_name name
let entry_of_var t var = Hashtbl.find_opt t.by_var var

let model t =
  List.fold_left
    (fun m e -> Smt.Model.set e.var e.concrete m)
    Smt.Model.empty (entries t)

let domains t =
  List.fold_left
    (fun acc e ->
      let lo = Option.value e.lo ~default:Smt.Domain.default_lo in
      let hi = Option.value e.hi ~default:Smt.Domain.default_hi in
      if lo > hi then acc
      else Smt.Varid.Map.add e.var (Smt.Domain.make ~lo ~hi) acc)
    Smt.Varid.Map.empty (entries t)

let input_values t solved =
  List.filter_map
    (fun e ->
      match e.kind with
      | Program_input name ->
        Some (name, Smt.Model.get e.var ~default:e.concrete solved)
      | Rank_world | Rank_comm _ | Size_world | Size_comm _ -> None)
    (entries t)

let vars_of_kind t pred = List.filter (fun e -> pred e.kind) (entries t)
let size t = Smt.Varid.count t.gen
