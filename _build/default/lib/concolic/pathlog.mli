(** Per-execution path log of the focus process.

    Records every branch event with its optional symbolic constraint and
    implements COMPI's {e constraint-set reduction} (paper section IV-C):
    when reduction is on, a constraint from a conditional statement is
    kept only the first time that conditional is seen or when its
    boolean outcome flips relative to the previous observation — the
    loop-redundancy heuristic. All branch events are always recorded for
    coverage regardless of reduction.

    The log also models the focus process's log file for the two-way
    instrumentation cost accounting (Table IV): {!heavy_bytes} is the
    size of a full symbolic log, {!light_bytes} the size of a
    branches-only log. *)

type event = {
  cond_id : int;
  branch : int;
  taken : bool;
  constr : Smt.Constr.t option;  (** [None]: concrete branch or dropped by reduction *)
}

type t

val create : reduce:bool -> t

val record : t -> cond_id:int -> taken:bool -> constr:Smt.Constr.t option -> unit

val events : t -> event list
(** In execution order. *)

val constraints : t -> (int * Smt.Constr.t) array
(** The constraint path: kept symbolic constraints in order, each with
    the branch id it came from. Negation indices refer to positions in
    this array. *)

val constraint_count : t -> int
val branch_events : t -> int

val tail : ?n:int -> t -> (int * bool) list
(** The last [n] (default 8) branch decisions, oldest first — the
    failure context attached to bug reports. *)

val heavy_bytes : t -> int
val light_bytes : t -> int

val serialize : t -> string
(** The focus process's log file, really rendered: every branch event
    and every kept constraint, line-oriented. CREST ships this file
    between the target and the search at {e every} iteration; calling
    this (and {!parse_count} on the result) in the runner charges that
    real cost, which is exactly what constraint-set reduction shrinks. *)

val parse_count : string -> int
(** Scan a serialized log and count its records (the read-back half of
    the round trip). *)
