type event = {
  cond_id : int;
  branch : int;
  taken : bool;
  constr : Smt.Constr.t option;
}

type t = {
  reduce : bool;
  mutable events_rev : event list;
  mutable nevents : int;
  mutable nconstraints : int;
  last_outcome : (int, bool) Hashtbl.t;  (* per conditional, for reduction *)
  mutable constraint_bytes : int;
}

let create ~reduce =
  {
    reduce;
    events_rev = [];
    nevents = 0;
    nconstraints = 0;
    last_outcome = Hashtbl.create 64;
    constraint_bytes = 0;
  }

(* Rough serialized size of one linear constraint: one 16-byte line per
   term plus relation and constant. *)
let constr_bytes c =
  16 + (16 * List.length (Smt.Linexp.terms c.Smt.Constr.exp))

let record t ~cond_id ~taken ~constr =
  let keep =
    match constr with
    | None -> None
    | Some _ when not t.reduce -> constr
    | Some _ -> (
      match Hashtbl.find_opt t.last_outcome cond_id with
      | None -> constr
      | Some previous when previous <> taken -> constr
      | Some _ -> None)
  in
  Hashtbl.replace t.last_outcome cond_id taken;
  let branch = Minic.Branchinfo.branch_of_cond cond_id taken in
  t.events_rev <- { cond_id; branch; taken; constr = keep } :: t.events_rev;
  t.nevents <- t.nevents + 1;
  match keep with
  | Some c ->
    t.nconstraints <- t.nconstraints + 1;
    t.constraint_bytes <- t.constraint_bytes + constr_bytes c
  | None -> ()

let events t = List.rev t.events_rev

let constraints t =
  let arr = Array.make t.nconstraints (0, Smt.Constr.make (Smt.Linexp.const 0) Smt.Constr.Eq) in
  let k = ref (t.nconstraints - 1) in
  List.iter
    (fun e ->
      match e.constr with
      | Some c ->
        arr.(!k) <- (e.branch, c);
        decr k
      | None -> ())
    t.events_rev;
  arr

let constraint_count t = t.nconstraints
let branch_events t = t.nevents

let tail ?(n = 8) t =
  let rec take k = function
    | e :: rest when k < n -> (e.cond_id, e.taken) :: take (k + 1) rest
    | _ -> []
  in
  List.rev (take 0 t.events_rev)

(* Heavy log: every branch event (8 bytes) + all constraints + a header.
   Light log: the set of distinct covered branch ids only. *)
let heavy_bytes t = 64 + (8 * t.nevents) + t.constraint_bytes

let light_bytes t =
  let distinct = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace distinct e.branch ()) t.events_rev;
  64 + (8 * Hashtbl.length distinct)

let serialize t =
  let buf = Buffer.create (t.constraint_bytes + (16 * t.nevents) + 64) in
  List.iter
    (fun e ->
      Buffer.add_string buf (string_of_int e.branch);
      (match e.constr with
      | Some c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Smt.Constr.rel_to_string c.Smt.Constr.rel);
        List.iter
          (fun (coeff, var) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int coeff);
            Buffer.add_char buf '*';
            Buffer.add_string buf (string_of_int var))
          (Smt.Linexp.terms c.Smt.Constr.exp);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int (Smt.Linexp.constant c.Smt.Constr.exp))
      | None -> ());
      Buffer.add_char buf '\n')
    (List.rev t.events_rev);
  Buffer.contents buf

let parse_count text =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) text;
  !n
