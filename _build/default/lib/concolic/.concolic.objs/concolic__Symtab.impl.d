lib/concolic/symtab.ml: Hashtbl List Option Smt
