lib/concolic/coverage.ml: Int Set String
