lib/concolic/pathlog.ml: Array Buffer Hashtbl List Minic Smt String
