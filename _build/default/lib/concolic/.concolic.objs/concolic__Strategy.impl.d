lib/concolic/strategy.ml: Array Coverage Execution Hashtbl Int List Minic Option Printf Random Stack
