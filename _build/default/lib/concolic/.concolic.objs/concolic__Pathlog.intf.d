lib/concolic/pathlog.mli: Smt
