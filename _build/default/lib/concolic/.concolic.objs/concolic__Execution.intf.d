lib/concolic/execution.mli: Smt Symtab
