lib/concolic/coverage.mli:
