lib/concolic/symtab.mli: Smt
