lib/concolic/strategy.mli: Coverage Execution Minic
