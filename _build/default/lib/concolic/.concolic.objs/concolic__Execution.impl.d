lib/concolic/execution.ml: Array List Smt Symtab
