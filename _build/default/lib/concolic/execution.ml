type t = {
  constraints : (int * Smt.Constr.t) array;
  symtab : Symtab.t;
  model : Smt.Model.t;
  domains : Smt.Domain.t Smt.Varid.Map.t;
  extra : Smt.Constr.t list;
  nprocs : int;
  focus : int;
  mapping : (int * int array) list;
}

let length t = Array.length t.constraints

let prefix t i =
  let rec go k acc = if k < 0 then acc else go (k - 1) (snd t.constraints.(k) :: acc) in
  go (i - 1) []

let constr_at t i = snd t.constraints.(i)
let branch_at t i = fst t.constraints.(i)

let solve_negation ?budget t i =
  let negated = Smt.Constr.negate (constr_at t i) in
  let cs = negated :: List.rev_append (List.rev (prefix t i)) t.extra in
  Smt.Solver.solve_incremental ?budget ~domains:t.domains ~prev:t.model ~target:negated cs
