(** Per-run symbol table of marked variables.

    Every concolic execution allocates fresh symbolic variables: one per
    distinct marked program input, and one per {e invocation} of
    MPI_Comm_rank / MPI_Comm_size (the paper's rw, rc and sw families,
    Table I). The table also remembers each variable's concrete value in
    the run (the solver's "previous inputs"), the capping bounds, and —
    for rc variables — the size of their communicator, needed by the
    inherent constraint y_i < s_i (section III-B). *)

type kind =
  | Program_input of string
  | Rank_world
  | Rank_comm of int  (** communicator handle *)
  | Size_world
  | Size_comm of int

type entry = {
  var : Smt.Varid.t;
  kind : kind;
  lo : int option;
  hi : int option;
  concrete : int;
  comm_size : int option;  (** for [Rank_comm]: size of that communicator *)
}

type t

val create : unit -> t

val fresh_input :
  t -> name:string -> ?lo:int -> ?hi:int -> concrete:int -> unit -> Smt.Varid.t
(** Repeated reads of the same input name in one run reuse the variable. *)

val fresh_sem : t -> kind:kind -> ?comm_size:int -> concrete:int -> unit -> Smt.Varid.t

val entries : t -> entry list
(** In allocation order. *)

val find_input : t -> string -> entry option
val entry_of_var : t -> Smt.Varid.t -> entry option

val model : t -> Smt.Model.t
(** Concrete values of this run — the solver's previous inputs. *)

val domains : t -> Smt.Domain.t Smt.Varid.Map.t
(** Capping bounds as solver domains (variables without bounds get the
    default domain). *)

val input_values : t -> Smt.Model.t -> (string * int) list
(** Project a solved model onto program-input names. *)

val vars_of_kind : t -> (kind -> bool) -> entry list

val size : t -> int
(** Number of variables allocated. *)
