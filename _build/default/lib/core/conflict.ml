open Concolic

type decision = { nprocs : int; focus : int; moved : bool }

let clamp lo hi x = max lo (min hi x)

let resolve ~prev_nprocs ~prev_focus ~mapping ~symtab ~result =
  let model = result.Smt.Solver.model in
  let value e = Smt.Model.get e.Symtab.var ~default:e.Symtab.concrete model in
  let nprocs =
    match Mpi_sem.sw_vars symtab with
    | z0 :: _ -> max 1 (value z0)
    | [] -> prev_nprocs
  in
  let changed e = Smt.Varid.Set.mem e.Symtab.var result.Smt.Solver.changed in
  let changed_rw = List.filter changed (Mpi_sem.rw_vars symtab) in
  let changed_rc = List.filter changed (Mpi_sem.rc_vars symtab) in
  let focus, moved_rank =
    match changed_rw with
    | e :: _ -> (value e, true)
    | [] -> (
      match changed_rc with
      | e :: _ -> (
        (* translate the new local rank to a global rank via Table II *)
        let local = value e in
        let row =
          match e.Symtab.kind with
          | Symtab.Rank_comm handle -> List.assoc_opt handle mapping
          | Symtab.Program_input _ | Symtab.Rank_world | Symtab.Size_world
          | Symtab.Size_comm _ ->
            None
        in
        match row with
        | Some globals when local >= 0 && local < Array.length globals ->
          (globals.(local), true)
        | Some _ | None -> (prev_focus, false))
      | [] -> (prev_focus, false))
  in
  let focus = clamp 0 (nprocs - 1) focus in
  { nprocs; focus; moved = moved_rank || nprocs <> prev_nprocs }
