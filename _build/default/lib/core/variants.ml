type t =
  | Compi_default
  | No_reduction_bounded of int
  | No_reduction_unlimited
  | One_way
  | No_framework
  | Strategy_of of Concolic.Strategy.kind

let name = function
  | Compi_default -> "compi"
  | No_reduction_bounded b -> Printf.sprintf "nrbound(%d)" b
  | No_reduction_unlimited -> "nrunl"
  | One_way -> "one-way"
  | No_framework -> "no-fwk"
  | Strategy_of kind ->
    (match kind with
    | Concolic.Strategy.Bounded_dfs b -> Printf.sprintf "bounded-dfs(%d)" b
    | Concolic.Strategy.Random_branch -> "random-branch"
    | Concolic.Strategy.Uniform_random -> "uniform-random"
    | Concolic.Strategy.Cfg_directed _ -> "cfg"
    | Concolic.Strategy.Generational b -> Printf.sprintf "generational(%d)" b)

let apply t (settings : Driver.settings) =
  match t with
  | Compi_default -> settings
  | No_reduction_bounded bound ->
    {
      settings with
      Driver.reduce = false;
      depth_bound = Some bound;
      strategy = Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs bound);
    }
  | No_reduction_unlimited ->
    {
      settings with
      Driver.reduce = false;
      depth_bound = Some max_int;
      strategy = Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs max_int);
    }
  | One_way -> { settings with Driver.two_way = false }
  | No_framework -> { settings with Driver.framework = false }
  | Strategy_of kind -> { settings with Driver.strategy = Driver.Fixed_strategy kind }

let run t ~settings info = Driver.run ~settings:(apply t settings) info
