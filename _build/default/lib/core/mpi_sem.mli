(** Inherent MPI-semantics constraints (paper section III-B).

    Given the symbol table of one run, produce the constraints the
    solver must always respect, as the union of:

    - equality of all rw variables (they all denote the focus's global
      rank);
    - equality of all sw variables (the size of MPI_COMM_WORLD);
    - [x0 < z0] — the global rank is below the world size;
    - [0 <= y_i < s_i] for each rc variable, with [s_i] the concrete
      size of its communicator observed at runtime;
    - [x0 >= 0] and [z0 >= 1];
    - [z0 <= nprocs_cap] — input capping applied to the process count,
      the guard that keeps the solver from demanding a platform-crashing
      number of processes (section IV-A). *)

val constraints : nprocs_cap:int -> Concolic.Symtab.t -> Smt.Constr.t list

val rw_vars : Concolic.Symtab.t -> Concolic.Symtab.entry list
val rc_vars : Concolic.Symtab.t -> Concolic.Symtab.entry list
val sw_vars : Concolic.Symtab.t -> Concolic.Symtab.entry list
