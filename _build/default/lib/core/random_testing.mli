(** The Random baseline (paper section VI-E).

    Every iteration draws fresh random values for all marked inputs
    (within the input-capping limits), a random process count in
    [1, nprocs_cap] and a random focus, and runs the program with light
    instrumentation everywhere — no symbolic execution, no constraint
    solving. Coverage is recorded across all processes so the comparison
    against COMPI is about input quality only. *)

val run : ?settings:Driver.settings -> Minic.Branchinfo.t -> Driver.result
