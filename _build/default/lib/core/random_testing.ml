open Concolic
open Minic

let run ?(settings = Driver.default_settings) (info : Branchinfo.t) =
  let rng = Random.State.make [| settings.Driver.seed |] in
  let program = info.Branchinfo.program in
  let coverage = Coverage.create () in
  let base =
    {
      (Runner.default_config ~info) with
      Runner.symbolic = false;
      nprocs_cap = settings.Driver.nprocs_cap;
      cap_overrides = settings.Driver.cap_overrides;
      step_limit = settings.Driver.step_limit;
      max_procs = settings.Driver.max_procs;
    }
  in
  let t_start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let time_ok () =
    match settings.Driver.time_budget with Some b -> elapsed () < b | None -> true
  in
  let stats = ref [] in
  let bugs = ref [] in
  let iter = ref 0 in
  while !iter < settings.Driver.iterations && time_ok () do
    let nprocs = 1 + Random.State.int rng settings.Driver.nprocs_cap in
    let focus = Random.State.int rng nprocs in
    let inputs = Driver.random_inputs rng settings program in
    let config = { base with Runner.inputs; nprocs; focus } in
    (match Runner.run config with
    | Error (`Platform_limit _) -> ()
    | Ok res ->
      Coverage.absorb ~into:coverage res.Runner.coverage;
      List.iter
        (fun (rank, fault) ->
          bugs :=
            {
              Driver.bug_iteration = !iter;
              bug_rank = rank;
              bug_fault = fault;
              bug_inputs = inputs;
              bug_nprocs = nprocs;
              bug_focus = focus;
              bug_context = res.Runner.focus_tail;
            }
            :: !bugs)
        (Runner.faults res);
      stats :=
        {
          Driver.iteration = !iter;
          nprocs;
          focus;
          constraint_set_size = 0;
          covered_after = Coverage.covered_branches coverage;
          reachable_after =
            Branchinfo.reachable_branches info
              ~encountered:(Coverage.encountered coverage);
          faults_seen = List.length (Runner.faults res);
          restarted = true;
          exec_time = res.Runner.wall_time;
          solve_time = 0.0;
        }
        :: !stats);
    incr iter
  done;
  let reachable =
    Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage)
  in
  let covered = Coverage.covered_branches coverage in
  {
    Driver.coverage;
    stats = List.rev !stats;
    bugs = List.rev !bugs;
    total_branches = info.Branchinfo.total_branches;
    reachable_branches = reachable;
    covered_branches = covered;
    coverage_rate =
      (if reachable = 0 then 0.0 else float_of_int covered /. float_of_int reachable);
    iterations_run = !iter;
    wall_time = elapsed ();
    max_constraint_set = 0;
    derived_bound = None;
  }
