(** Named campaign configurations — the paper's experiment arms.

    Each preset transforms a base {!Driver.settings} (usually derived
    from a target's tuning) into one of the configurations evaluated in
    section VI, so benchmarks and the CLI agree on what e.g. "NRBound"
    means. *)

type t =
  | Compi_default  (** R + two-way + framework + two-phase BoundedDFS *)
  | No_reduction_bounded of int  (** NRBound: reduction off, fixed bound *)
  | No_reduction_unlimited  (** NRUnl *)
  | One_way  (** one-way instrumentation (Table IV baseline) *)
  | No_framework  (** No_Fwk: fixed focus/process count, focus-only coverage *)
  | Strategy_of of Concolic.Strategy.kind  (** Figure 4 arms *)

val name : t -> string
val apply : t -> Driver.settings -> Driver.settings

val run :
  t -> settings:Driver.settings -> Minic.Branchinfo.t -> Driver.result
(** Run the configured campaign ({!Driver.run}); the [Random] baseline of
    Table VI is {!Random_testing.run} and needs no preset. *)
