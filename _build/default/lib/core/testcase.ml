type t = {
  target : string;
  nprocs : int;
  focus : int;
  inputs : (string * int) list;
  fault : string option;
}

let of_bug ~target (b : Driver.bug) =
  {
    target;
    nprocs = b.Driver.bug_nprocs;
    focus = b.Driver.bug_focus;
    inputs = b.Driver.bug_inputs;
    fault = Some (Minic.Fault.kind_name b.Driver.bug_fault);
  }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "target: %s\n" t.target);
  Buffer.add_string buf (Printf.sprintf "nprocs: %d\n" t.nprocs);
  Buffer.add_string buf (Printf.sprintf "focus: %d\n" t.focus);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "input: %s = %d\n" k v))
    t.inputs;
  (match t.fault with
  | Some f -> Buffer.add_string buf (Printf.sprintf "fault: %s\n" f)
  | None -> ());
  Buffer.contents buf

let parse_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed line %S" line)
  | Some k ->
    let key = String.trim (String.sub line 0 k) in
    let value = String.trim (String.sub line (k + 1) (String.length line - k - 1)) in
    Ok (key, value)

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let init = { target = ""; nprocs = 1; focus = 0; inputs = []; fault = None } in
  let step acc line =
    match acc with
    | Error _ -> acc
    | Ok t -> (
      match parse_line line with
      | Error e -> Error e
      | Ok (key, value) -> (
        match key with
        | "target" -> Ok { t with target = value }
        | "nprocs" -> (
          match int_of_string_opt value with
          | Some n -> Ok { t with nprocs = n }
          | None -> Error "nprocs: not an integer")
        | "focus" -> (
          match int_of_string_opt value with
          | Some n -> Ok { t with focus = n }
          | None -> Error "focus: not an integer")
        | "fault" -> Ok { t with fault = Some value }
        | "input" -> (
          match String.index_opt value '=' with
          | None -> Error (Printf.sprintf "input without '=': %S" value)
          | Some e -> (
            let name = String.trim (String.sub value 0 e) in
            let num = String.trim (String.sub value (e + 1) (String.length value - e - 1)) in
            match int_of_string_opt num with
            | Some n -> Ok { t with inputs = t.inputs @ [ (name, n) ] }
            | None -> Error (Printf.sprintf "input %s: not an integer" name)))
        | other -> Error (Printf.sprintf "unknown key %S" other)))
  in
  match List.fold_left step (Ok init) lines with
  | Ok t when t.target = "" -> Error "missing target"
  | (Ok _ | Error _) as r -> r

let save ~path cases =
  let oc = open_out path in
  (try
     List.iteri
       (fun k c ->
         if k > 0 then output_string oc "\n";
         output_string oc (to_string c))
       cases
   with e ->
     close_out oc;
     raise e);
  close_out oc

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
    (* blocks separated by blank lines *)
    let blocks =
      Str_split.split_blocks text
    in
    let rec parse_all acc = function
      | [] -> Ok (List.rev acc)
      | block :: rest -> (
        match of_string block with
        | Ok c -> parse_all (c :: acc) rest
        | Error e -> Error e)
    in
    parse_all [] blocks

let replay t ~info ?(step_limit = 10_000_000) () =
  let config =
    {
      (Runner.default_config ~info) with
      Runner.nprocs = t.nprocs;
      focus = min t.focus (max 0 (t.nprocs - 1));
      inputs = t.inputs;
      step_limit;
    }
  in
  match Runner.run config with
  | Ok res -> Ok (Runner.faults res)
  | Error (`Platform_limit _ as e) -> Error e
