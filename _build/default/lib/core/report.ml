let summary ppf (r : Driver.result) =
  Format.fprintf ppf "iterations   %d@." r.Driver.iterations_run;
  Format.fprintf ppf "coverage     %d / %d reachable (%.1f%%), %d branches total@."
    r.Driver.covered_branches r.Driver.reachable_branches
    (100.0 *. r.Driver.coverage_rate) r.Driver.total_branches;
  Format.fprintf ppf "constraints  max set %d%s@." r.Driver.max_constraint_set
    (match r.Driver.derived_bound with
    | Some b -> Printf.sprintf ", derived BoundedDFS bound %d" b
    | None -> "");
  Format.fprintf ppf "wall time    %.2fs@." r.Driver.wall_time;
  let bugs = Driver.distinct_bugs r in
  Format.fprintf ppf "bugs         %d distinct (%d occurrences)@." (List.length bugs)
    (List.length r.Driver.bugs);
  List.iter
    (fun (b : Driver.bug) ->
      Format.fprintf ppf "  - [iter %d, np %d, rank %d] %a@." b.Driver.bug_iteration
        b.Driver.bug_nprocs b.Driver.bug_rank Minic.Fault.pp b.Driver.bug_fault)
    bugs

let coverage_curve ?(points = 20) (r : Driver.result) =
  let stats = Array.of_list r.Driver.stats in
  let n = Array.length stats in
  if n = 0 then []
  else begin
    let sample k =
      let idx = min (n - 1) (k * n / points) in
      let s = stats.(idx) in
      (s.Driver.iteration, s.Driver.covered_after)
    in
    let body = List.init points sample in
    let last = stats.(n - 1) in
    List.sort_uniq compare (body @ [ (last.Driver.iteration, last.Driver.covered_after) ])
  end

let ascii_curve ?(width = 60) ?(height = 12) (r : Driver.result) =
  let stats = Array.of_list r.Driver.stats in
  let n = Array.length stats in
  if n = 0 then "(no iterations)\n"
  else begin
    let max_cov =
      Array.fold_left (fun acc s -> max acc s.Driver.covered_after) 1 stats
    in
    let grid = Array.make_matrix height width ' ' in
    for col = 0 to width - 1 do
      let idx = min (n - 1) (col * n / width) in
      let cov = stats.(idx).Driver.covered_after in
      let row = (cov * (height - 1)) / max_cov in
      for fill = 0 to row do
        grid.(height - 1 - fill).(col) <- (if fill = row then '*' else '.')
      done
    done;
    let buf = Buffer.create ((width + 8) * height) in
    Array.iteri
      (fun k row ->
        let label =
          if k = 0 then Printf.sprintf "%5d |" max_cov
          else if k = height - 1 then Printf.sprintf "%5d |" 0
          else "      |"
        in
        Buffer.add_string buf label;
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf
      (Printf.sprintf "      +%s\n       iterations 0..%d\n" (String.make width '-')
         (match r.Driver.stats with
         | [] -> 0
         | stats -> (List.nth stats (List.length stats - 1)).Driver.iteration));
    Buffer.contents buf
  end

let stats_csv (r : Driver.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "iteration,nprocs,focus,cs_size,covered,reachable,faults,restarted,exec_s,solve_s\n";
  List.iter
    (fun (s : Driver.iter_stat) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%b,%.6f,%.6f\n" s.Driver.iteration
           s.Driver.nprocs s.Driver.focus s.Driver.constraint_set_size
           s.Driver.covered_after s.Driver.reachable_after s.Driver.faults_seen
           s.Driver.restarted s.Driver.exec_time s.Driver.solve_time))
    r.Driver.stats;
  Buffer.contents buf

let uncovered (info : Minic.Branchinfo.t) coverage =
  let acc = ref [] in
  for cond = info.Minic.Branchinfo.total_conditionals - 1 downto 0 do
    let func = info.Minic.Branchinfo.func_of_cond.(cond) in
    if Concolic.Coverage.encountered coverage func then
      List.iter
        (fun dir ->
          if
            not
              (Concolic.Coverage.mem_branch coverage
                 (Minic.Branchinfo.branch_of_cond cond dir))
          then acc := (cond, dir, func) :: !acc)
        [ false; true ]
  done;
  !acc

let annotate (info : Minic.Branchinfo.t) coverage =
  let text = Minic.Pretty.program_to_string info.Minic.Branchinfo.program in
  let buf = Buffer.create (String.length text + 1024) in
  let n = String.length text in
  let mark cond dir =
    if Concolic.Coverage.mem_branch coverage (Minic.Branchinfo.branch_of_cond cond dir)
    then "+"
    else "-"
  in
  let rec go k =
    if k >= n then ()
    else if k + 1 < n && text.[k] = '/' && text.[k + 1] = '*' then begin
      (* try to read a numeric marker "/*123*/" *)
      let j = ref (k + 2) in
      while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
        incr j
      done;
      if !j > k + 2 && !j + 1 < n && text.[!j] = '*' && text.[!j + 1] = '/' then begin
        let cond = int_of_string (String.sub text (k + 2) (!j - k - 2)) in
        Buffer.add_string buf
          (Printf.sprintf "/*%d T%s F%s*/" cond (mark cond true) (mark cond false));
        go (!j + 2)
      end
      else begin
        Buffer.add_char buf text.[k];
        go (k + 1)
      end
    end
    else begin
      Buffer.add_char buf text.[k];
      go (k + 1)
    end
  in
  go 0;
  Buffer.contents buf

let bugs_csv (r : Driver.result) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "iteration,rank,nprocs,focus,kind,detail,inputs\n";
  List.iter
    (fun (b : Driver.bug) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%s,%S,%S\n" b.Driver.bug_iteration b.Driver.bug_rank
           b.Driver.bug_nprocs b.Driver.bug_focus
           (Minic.Fault.kind_name b.Driver.bug_fault)
           (Minic.Fault.to_string b.Driver.bug_fault)
           (String.concat " "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) b.Driver.bug_inputs))))
    r.Driver.bugs;
  Buffer.contents buf
