(** Persistent test cases: save and replay error-inducing inputs.

    COMPI "logs the derived error-inducing input for further bug
    analysis" (paper section V); this module is that log. A test case
    records everything needed to reproduce one run — target name, input
    values, process count and focus — in a line-oriented text format
    stable across sessions:

    {v
    target: susy-hmc
    nprocs: 2
    focus: 0
    input: nx = 2
    input: nz = 2
    ...
    fault: floating-point-exception
    v} *)

type t = {
  target : string;
  nprocs : int;
  focus : int;
  inputs : (string * int) list;
  fault : string option;  (** fault kind observed when recorded *)
}

val of_bug : target:string -> Driver.bug -> t

val to_string : t -> string
val of_string : string -> (t, string) result

val save : path:string -> t list -> unit
(** Writes test cases separated by blank lines; overwrites. *)

val load : path:string -> (t list, string) result

val replay :
  t -> info:Minic.Branchinfo.t -> ?step_limit:int -> unit ->
  ((int * Minic.Fault.t) list, [ `Platform_limit of int ]) Stdlib.result
(** Re-run a saved test case; returns the faults observed (empty list =
    clean run). *)
