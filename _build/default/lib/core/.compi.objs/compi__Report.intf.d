lib/core/report.mli: Concolic Driver Format Minic
