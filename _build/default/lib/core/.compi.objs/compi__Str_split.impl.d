lib/core/str_split.ml: List String
