lib/core/runner.ml: Array Ast Branchinfo Concolic Coverage Execution Fault Interp List Minic Mpi_iface Mpi_sem Mpisim Pathlog Smt Stdlib String Symtab Unix
