lib/core/mpi_sem.ml: Concolic List Smt Symtab
