lib/core/conflict.mli: Concolic Smt
