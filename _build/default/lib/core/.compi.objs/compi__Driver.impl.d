lib/core/driver.ml: Ast Branchinfo Cfg Concolic Conflict Coverage Execution Fault Format Hashtbl List Minic Mpisim Option Printf Random Runner Smt Strategy Symtab Sys Unix
