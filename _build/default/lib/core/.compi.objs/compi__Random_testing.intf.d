lib/core/random_testing.mli: Driver Minic
