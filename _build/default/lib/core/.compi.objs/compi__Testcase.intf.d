lib/core/testcase.mli: Driver Minic Stdlib
