lib/core/variants.ml: Concolic Driver Printf
