lib/core/runner.mli: Concolic Minic Mpisim Stdlib
