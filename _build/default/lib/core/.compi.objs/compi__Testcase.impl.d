lib/core/testcase.ml: Buffer Driver In_channel List Minic Printf Runner Str_split String
