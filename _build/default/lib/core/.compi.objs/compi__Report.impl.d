lib/core/report.ml: Array Buffer Concolic Driver Format List Minic Printf String
