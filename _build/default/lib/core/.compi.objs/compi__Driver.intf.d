lib/core/driver.mli: Concolic Minic Random
