lib/core/conflict.ml: Array Concolic List Mpi_sem Smt Symtab
