lib/core/variants.mli: Concolic Driver Minic
