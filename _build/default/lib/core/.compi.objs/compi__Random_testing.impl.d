lib/core/random_testing.ml: Branchinfo Concolic Coverage Driver List Minic Random Runner Unix
