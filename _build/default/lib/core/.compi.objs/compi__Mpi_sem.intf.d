lib/core/mpi_sem.mli: Concolic Smt
