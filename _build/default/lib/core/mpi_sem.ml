open Concolic

let rw_vars tab =
  Symtab.vars_of_kind tab (function Symtab.Rank_world -> true | _ -> false)

let rc_vars tab =
  Symtab.vars_of_kind tab (function Symtab.Rank_comm _ -> true | _ -> false)

let sw_vars tab =
  Symtab.vars_of_kind tab (function Symtab.Size_world -> true | _ -> false)

let var e = Smt.Linexp.var e.Symtab.var

let equalities = function
  | [] -> []
  | first :: rest ->
    List.map (fun e -> Smt.Constr.cmp (var first) Smt.Constr.Eq (var e)) rest

let constraints ~nprocs_cap tab =
  let rws = rw_vars tab and rcs = rc_vars tab and sws = sw_vars tab in
  let rank_eq = equalities rws in
  let size_eq = equalities sws in
  let rank_lt_size =
    match (rws, sws) with
    | x0 :: _, z0 :: _ -> [ Smt.Constr.cmp (var x0) Smt.Constr.Lt (var z0) ]
    | _, _ -> []
  in
  let rc_bounds =
    List.concat_map
      (fun y ->
        let lower = Smt.Constr.make (var y) Smt.Constr.Ge in
        match y.Symtab.comm_size with
        | Some s when s > 0 ->
          [ lower; Smt.Constr.cmp (var y) Smt.Constr.Lt (Smt.Linexp.const s) ]
        | Some _ | None -> [ lower ])
      rcs
  in
  let rank_nonneg =
    match rws with x0 :: _ -> [ Smt.Constr.make (var x0) Smt.Constr.Ge ] | [] -> []
  in
  let size_bounds =
    match sws with
    | z0 :: _ ->
      [
        Smt.Constr.cmp (var z0) Smt.Constr.Ge (Smt.Linexp.const 1);
        Smt.Constr.cmp (var z0) Smt.Constr.Le (Smt.Linexp.const nprocs_cap);
      ]
    | [] -> []
  in
  List.concat [ rank_eq; size_eq; rank_lt_size; rc_bounds; rank_nonneg; size_bounds ]
