(* Tiny text utility: split a document into blocks separated by blank
   lines (used by the test-case store; no external regex dependency). *)

let split_blocks text =
  let lines = String.split_on_char '\n' text in
  let flush current acc =
    match current with
    | [] -> acc
    | _ :: _ -> String.concat "\n" (List.rev current) :: acc
  in
  let rec go current acc = function
    | [] -> List.rev (flush current acc)
    | line :: rest ->
      if String.trim line = "" then go [] (flush current acc) rest
      else go (line :: current) acc rest
  in
  go [] [] lines
