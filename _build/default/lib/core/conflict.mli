(** Conflict resolution and test setup (paper sections III-C and III-D).

    After an incremental solve, the values derived for the various rank
    variables may not all denote the same process: only the re-solved
    ("most up-to-date") values satisfy the negated constraint, stale
    values do not. This module picks the next test's process count and
    focus rank from the solved model:

    - the process count is the derived value of any sw variable
      (they are constrained equal);
    - if no rank variable changed, the focus stays (clamped into range);
    - if an rw variable changed, its new value {e is} the next focus's
      global rank;
    - if only an rc variable changed, its local rank is translated to a
      global rank through the run's local-to-global mapping table
      (paper Table II). *)

type decision = {
  nprocs : int;
  focus : int;
  moved : bool;  (** focus or process count differs from the previous test *)
}

val resolve :
  prev_nprocs:int ->
  prev_focus:int ->
  mapping:(int * int array) list ->
  symtab:Concolic.Symtab.t ->
  result:Smt.Solver.incremental_result ->
  decision
(** [mapping] is the previous run's Table II: communicator handle to the
    row of global ranks in local-rank order, from the focus's
    perspective. *)
