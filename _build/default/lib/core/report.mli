(** Campaign reports: human-readable summaries, coverage curves, and CSV
    export of the per-iteration statistics (the raw material of the
    paper's figures). *)

val summary : Format.formatter -> Driver.result -> unit
(** Multi-line textual summary: coverage, bound, timing, distinct bugs. *)

val coverage_curve : ?points:int -> Driver.result -> (int * int) list
(** [(iteration, covered_branches)] sampled at [points] positions
    (default 20), always including the final iteration. *)

val ascii_curve : ?width:int -> ?height:int -> Driver.result -> string
(** A small terminal plot of covered branches over iterations. *)

val stats_csv : Driver.result -> string
(** One line per iteration:
    [iteration,nprocs,focus,cs_size,covered,reachable,faults,restarted,exec_s,solve_s]. *)

val bugs_csv : Driver.result -> string

val uncovered :
  Minic.Branchinfo.t -> Concolic.Coverage.t -> (int * bool * string) list
(** Branches of {e encountered} functions never taken:
    [(conditional id, direction, owning function)] — the targets left for
    the next campaign. *)

val annotate : Minic.Branchinfo.t -> Concolic.Coverage.t -> string
(** The pretty-printed program with each conditional's [/*id*/] marker
    replaced by its coverage status, e.g. [/*17 T+ F-*/]: the true side
    was covered, the false side never. *)
