open Minic

let int_op = function
  | Mpi_iface.Rsum -> ( + )
  | Mpi_iface.Rprod -> ( * )
  | Mpi_iface.Rmax -> max
  | Mpi_iface.Rmin -> min

let float_op = function
  | Mpi_iface.Rsum -> ( +. )
  | Mpi_iface.Rprod -> ( *. )
  | Mpi_iface.Rmax -> Float.max
  | Mpi_iface.Rmin -> Float.min

let reduce op payloads =
  match payloads with
  | [] -> Error "reduce with no participants"
  | first :: rest ->
    let combine acc v =
      match acc with
      | Error _ -> acc
      | Ok acc_v -> (
        match (acc_v, v) with
        | Value.Vint a, Value.Vint b -> Ok (Value.Vint (int_op op a b))
        | Value.Vfloat a, Value.Vfloat b -> Ok (Value.Vfloat (float_op op a b))
        | Value.Varr_int a, Value.Varr_int b when Array.length a = Array.length b ->
          Ok (Value.Varr_int (Array.map2 (int_op op) a b))
        | Value.Varr_float a, Value.Varr_float b when Array.length a = Array.length b ->
          Ok (Value.Varr_float (Array.map2 (float_op op) a b))
        | (Value.Vint _ | Value.Vfloat _ | Value.Varr_int _ | Value.Varr_float _), _ ->
          Error
            (Printf.sprintf "reduce over mismatched payloads (%s vs %s)"
               (Value.type_name acc_v) (Value.type_name v)))
    in
    List.fold_left combine (Ok (Value.copy first)) rest

let gather payloads =
  let all_ints =
    List.for_all (function Value.Vint _ -> true | _ -> false) payloads
  in
  let all_floats =
    List.for_all (function Value.Vfloat _ -> true | _ -> false) payloads
  in
  if all_ints then
    Ok
      (Value.Varr_int
         (Array.of_list
            (List.map (function Value.Vint n -> n | _ -> assert false) payloads)))
  else if all_floats then
    Ok
      (Value.Varr_float
         (Array.of_list
            (List.map (function Value.Vfloat x -> x | _ -> assert false) payloads)))
  else Error "gather expects scalar payloads of one type"

let scatter src n =
  match src with
  | Value.Varr_int a when Array.length a >= n ->
    Ok (List.init n (fun k -> Value.Vint a.(k)))
  | Value.Varr_float a when Array.length a >= n ->
    Ok (List.init n (fun k -> Value.Vfloat a.(k)))
  | Value.Varr_int a ->
    Error
      (Printf.sprintf "scatter source has %d elements for %d participants"
         (Array.length a) n)
  | Value.Varr_float a ->
    Error
      (Printf.sprintf "scatter source has %d elements for %d participants"
         (Array.length a) n)
  | Value.Vint _ | Value.Vfloat _ -> Error "scatter source must be an array"

let alltoall sends =
  let n = List.length sends in
  let as_int_rows =
    List.map (function Value.Varr_int a when Array.length a >= n -> Some a | _ -> None) sends
  in
  if List.for_all Option.is_some as_int_rows then
    let rows = List.map Option.get as_int_rows in
    Ok
      (List.init n (fun j ->
           Value.Varr_int (Array.of_list (List.map (fun row -> row.(j)) rows))))
  else
    let as_float_rows =
      List.map
        (function Value.Varr_float a when Array.length a >= n -> Some a | _ -> None)
        sends
    in
    if List.for_all Option.is_some as_float_rows then
      let rows = List.map Option.get as_float_rows in
      Ok
        (List.init n (fun j ->
             Value.Varr_float (Array.of_list (List.map (fun row -> row.(j)) rows))))
    else Error "alltoall expects one array of length >= nprocs per sender"
