(** Pure semantics of the MPI collective operations.

    Given the per-participant payloads (in local-rank order), compute the
    per-participant results. All functions return [Error message] on
    type or shape mismatches, which the scheduler converts into
    [Fault.Mpi_error] for every participant. *)

open Minic

val reduce : Mpi_iface.reduce_op -> Value.t list -> (Value.t, string) result
(** Element-wise for arrays; all payloads must have the same shape. *)

val gather : Value.t list -> (Value.t, string) result
(** Scalars in local-rank order to one array. *)

val scatter : Value.t -> int -> (Value.t list, string) result
(** [scatter src n] hands element [i] of [src] (an array of length at
    least [n]) to local rank [i]. *)

val alltoall : Value.t list -> (Value.t list, string) result
(** [alltoall sends] where [sends] has one whole array per sender of
    length at least [n = List.length sends]; result element for local
    rank [j] is the array of [sends_i.(j)] over senders [i]. *)
