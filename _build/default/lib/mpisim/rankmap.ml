type t = {
  nprocs : int;
  comms : (int, int array) Hashtbl.t;  (* handle -> members in local order *)
  mutable next_handle : int;
}

let create ~nprocs =
  if nprocs < 1 then invalid_arg "Rankmap.create: nprocs < 1";
  let comms = Hashtbl.create 8 in
  Hashtbl.replace comms Minic.Mpi_iface.world (Array.init nprocs (fun g -> g));
  { nprocs; comms; next_handle = Minic.Mpi_iface.world + 1 }

let world_size t = t.nprocs
let members t ~comm = Hashtbl.find_opt t.comms comm
let size t ~comm = Option.map Array.length (members t ~comm)

let index_of arr x =
  let n = Array.length arr in
  let rec go k = if k >= n then None else if arr.(k) = x then Some k else go (k + 1) in
  go 0

let local_rank t ~comm ~global =
  Option.bind (members t ~comm) (fun ms -> index_of ms global)

let global_of_local t ~comm ~local =
  Option.bind (members t ~comm) (fun ms ->
      if local >= 0 && local < Array.length ms then Some ms.(local) else None)

let split t ~parent decisions =
  let parent_members =
    match members t ~comm:parent with
    | Some ms -> ms
    | None -> invalid_arg "Rankmap.split: unknown parent communicator"
  in
  let parent_local g = Option.value (index_of parent_members g) ~default:max_int in
  let by_color = Hashtbl.create 8 in
  List.iter
    (fun (g, color, key) ->
      if color >= 0 then
        Hashtbl.replace by_color color ((g, key) :: Option.value (Hashtbl.find_opt by_color color) ~default:[]))
    decisions;
  let colors = Hashtbl.fold (fun c _ acc -> c :: acc) by_color [] |> List.sort Int.compare in
  let handle_of_global = Hashtbl.create 8 in
  List.iter
    (fun color ->
      let group = Hashtbl.find by_color color in
      let sorted =
        List.sort
          (fun (g1, k1) (g2, k2) ->
            match Int.compare k1 k2 with
            | 0 -> Int.compare (parent_local g1) (parent_local g2)
            | c -> c)
          group
      in
      let ms = Array.of_list (List.map fst sorted) in
      let handle = t.next_handle in
      t.next_handle <- handle + 1;
      Hashtbl.replace t.comms handle ms;
      Array.iter (fun g -> Hashtbl.replace handle_of_global g handle) ms)
    colors;
  List.map
    (fun (g, color, _) ->
      if color < 0 then (g, -1)
      else (g, Option.value (Hashtbl.find_opt handle_of_global g) ~default:(-1)))
    decisions

let comms_of t ~global =
  Hashtbl.fold
    (fun handle ms acc ->
      match index_of ms global with Some l -> (handle, l) :: acc | None -> acc)
    t.comms []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let mapping_table t ~global =
  List.filter_map
    (fun (handle, _) ->
      if handle = Minic.Mpi_iface.world then None
      else Option.map (fun ms -> (handle, Array.copy ms)) (members t ~comm:handle))
    (comms_of t ~global)
