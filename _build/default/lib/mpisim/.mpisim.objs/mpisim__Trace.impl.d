lib/mpisim/trace.ml: Buffer Format Hashtbl List Option Printf String
