lib/mpisim/rankmap.mli:
