lib/mpisim/rankmap.ml: Array Hashtbl Int List Minic Option
