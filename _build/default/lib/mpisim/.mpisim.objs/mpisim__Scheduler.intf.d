lib/mpisim/scheduler.mli: Minic Rankmap Trace
