lib/mpisim/collectives.mli: Minic Mpi_iface Value
