lib/mpisim/trace.mli: Format
