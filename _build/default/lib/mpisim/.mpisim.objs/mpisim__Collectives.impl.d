lib/mpisim/collectives.ml: Array Float List Minic Mpi_iface Option Printf Value
