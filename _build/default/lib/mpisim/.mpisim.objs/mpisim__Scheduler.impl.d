lib/mpisim/scheduler.ml: Array Collectives Effect Fault Hashtbl Int List Minic Mpi_iface Option Printf Queue Rankmap Result Trace Value
