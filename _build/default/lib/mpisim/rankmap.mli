(** Communicator registry: membership and local/global rank maps.

    One registry lives for the duration of one simulated run. Comm 0 is
    MPI_COMM_WORLD; {!split} allocates fresh handles. The registry also
    serves COMPI's mapping table (paper Table II): for the focus process,
    each non-default communicator row lists global ranks in local-rank
    order, which is how a derived local-rank value is translated back to
    a global rank when selecting the next focus. *)

type t

val create : nprocs:int -> t
val world_size : t -> int

val members : t -> comm:int -> int array option
(** Global ranks in local-rank order; [None] for unknown handles. *)

val size : t -> comm:int -> int option
val local_rank : t -> comm:int -> global:int -> int option
val global_of_local : t -> comm:int -> local:int -> int option

val split : t -> parent:int -> (int * int * int) list -> (int * int) list
(** [split t ~parent decisions] performs MPI_Comm_split. [decisions] is
    [(global_rank, color, key)] for every member of [parent]; the result
    maps each global rank to its new comm handle (or [-1] when its color
    is negative, the MPI_UNDEFINED convention). Members of a color are
    ordered by key, ties broken by parent-comm local rank. *)

val comms_of : t -> global:int -> (int * int) list
(** All communicators containing [global], as [(comm, local_rank)],
    world included, in handle order. *)

val mapping_table : t -> global:int -> (int * int array) list
(** Paper Table II from the perspective of one process: every non-world
    communicator containing it, with the row of global ranks indexed by
    local rank. *)
