(* Bug hunt on the synthetic SUSY-HMC target: reproduces the paper's
   headline result (section VI-A) — four distinct defects, three
   segfaults from malloc under-allocation and one division-by-zero that
   only manifests with 2 or 4 processes.

     dune exec examples/susy_bug_hunt.exe *)

let () =
  let target = Targets.Catalog.find_exn "susy-hmc" in
  let info = Targets.Registry.instrument target in
  Printf.printf "hunting bugs in %s (%s)\n\n" target.Targets.Registry.name
    target.Targets.Registry.description;
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 800;
      dfs_phase_iters = target.Targets.Registry.tuning.Targets.Registry.dfs_phase;
      initial_nprocs = 8;
      step_limit = target.Targets.Registry.tuning.Targets.Registry.step_limit;
      seed = 5;
    }
  in
  let result = Compi.Driver.run ~settings info in
  let bugs = Compi.Driver.distinct_bugs result in
  Printf.printf "%d distinct defects in %d iterations (%.1fs):\n\n"
    (List.length bugs) result.Compi.Driver.iterations_run result.Compi.Driver.wall_time;
  List.iteri
    (fun k (b : Compi.Driver.bug) ->
      Printf.printf "bug %d: %s\n" (k + 1) (Minic.Fault.to_string b.Compi.Driver.bug_fault);
      Printf.printf "  found at iteration %d with %d processes (focus %d)\n"
        b.Compi.Driver.bug_iteration b.Compi.Driver.bug_nprocs b.Compi.Driver.bug_focus;
      Printf.printf "  triggering inputs: %s\n\n"
        (String.concat ", "
           (List.map (fun (n, x) -> Printf.sprintf "%s=%d" n x) b.Compi.Driver.bug_inputs)))
    bugs;
  (* Verify the FPE's process-count dependence, as the SUSY developer
     did when confirming the paper's report: replay the triggering
     inputs under 1..4 processes. *)
  match
    List.find_opt
      (fun (b : Compi.Driver.bug) ->
        match b.Compi.Driver.bug_fault with Minic.Fault.Fpe _ -> true | _ -> false)
      bugs
  with
  | None -> Printf.printf "(no FPE found this run — increase the iteration budget)\n"
  | Some fpe ->
    Printf.printf "replaying the FPE's inputs at 1..4 processes:\n";
    List.iter
      (fun nprocs ->
        let config =
          {
            (Compi.Runner.default_config ~info) with
            Compi.Runner.nprocs;
            inputs = fpe.Compi.Driver.bug_inputs;
            step_limit = settings.Compi.Driver.step_limit;
          }
        in
        match Compi.Runner.run config with
        | Ok res ->
          let fpes =
            List.filter
              (fun (_, f) -> match f with Minic.Fault.Fpe _ -> true | _ -> false)
              (Compi.Runner.faults res)
          in
          Printf.printf "  %d processes: %s\n" nprocs
            (if fpes <> [] then "FLOATING POINT EXCEPTION" else "clean")
        | Error (`Platform_limit _) -> ())
      [ 1; 2; 3; 4 ]
