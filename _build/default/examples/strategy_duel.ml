(* Figure 4 in miniature: race the four search strategies on any target
   and watch only the systematic one get past the sanity check.

     dune exec examples/strategy_duel.exe            # hpl, 300 iterations
     dune exec examples/strategy_duel.exe -- susy-hmc 500 *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "hpl" in
  let iterations = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 300 in
  let target = Targets.Catalog.find_exn name in
  let info = Targets.Registry.instrument target in
  let tn = target.Targets.Registry.tuning in
  let base =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations;
      dfs_phase_iters = tn.Targets.Registry.dfs_phase;
      initial_nprocs = tn.Targets.Registry.initial_nprocs;
      step_limit = tn.Targets.Registry.step_limit;
      seed = 11;
    }
  in
  let arms =
    [
      Compi.Variants.Compi_default;
      Compi.Variants.Strategy_of (Concolic.Strategy.Bounded_dfs 100);
      Compi.Variants.Strategy_of Concolic.Strategy.Random_branch;
      Compi.Variants.Strategy_of Concolic.Strategy.Uniform_random;
      Compi.Variants.Strategy_of (Concolic.Strategy.Cfg_directed (Minic.Cfg.build info));
    ]
  in
  Printf.printf "%s, %d iterations per strategy (%d branches total)\n\n" name iterations
    info.Minic.Branchinfo.total_branches;
  Printf.printf "%-22s %10s %10s %8s\n" "strategy" "covered" "bugs" "time";
  List.iter
    (fun arm ->
      let r = Compi.Variants.run arm ~settings:base info in
      Printf.printf "%-22s %10d %10d %7.1fs\n%!" (Compi.Variants.name arm)
        r.Compi.Driver.covered_branches
        (List.length (Compi.Driver.distinct_bugs r))
        r.Compi.Driver.wall_time)
    arms;
  Printf.printf
    "\nOnly the systematic strategies flip the sanity checks one by one; the\n\
     random and CFG strategies keep re-negating the same shallow constraints\n\
     (paper, Figure 4 and section II-B).\n"
