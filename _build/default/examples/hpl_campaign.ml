(* A full COMPI campaign on the synthetic HPL target, printing the
   coverage curve — the workload behind Figures 4 and 6 of the paper.
   Demonstrates input capping: the matrix size is re-capped from the
   command line (default 300, the paper's default cap NC).

     dune exec examples/hpl_campaign.exe            # cap 300
     dune exec examples/hpl_campaign.exe -- 600 800 # cap 600, 800 iters *)

let () =
  let cap = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300 in
  let iterations = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 400 in
  let target = Targets.Catalog.find_exn "hpl" in
  let info = Targets.Registry.instrument target in
  Printf.printf "HPL campaign: %d iterations, matrix size capped at %d\n" iterations cap;
  Printf.printf "(28 marked parameters; %d total branches)\n\n"
    info.Minic.Branchinfo.total_branches;
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations;
      dfs_phase_iters = target.Targets.Registry.tuning.Targets.Registry.dfs_phase;
      initial_nprocs = 8;
      step_limit = target.Targets.Registry.tuning.Targets.Registry.step_limit;
      cap_overrides = [ ("n", cap) ];
    }
  in
  let result = Compi.Driver.run ~settings info in
  (* coverage curve, sampled every 10% of the run *)
  let stats = Array.of_list result.Compi.Driver.stats in
  let n = Array.length stats in
  Printf.printf "%-10s %10s %10s %8s %8s\n" "iteration" "covered" "cs-size" "nprocs" "focus";
  for k = 0 to 9 do
    let idx = min (n - 1) (k * n / 10) in
    let s = stats.(idx) in
    Printf.printf "%-10d %10d %10d %8d %8d\n" s.Compi.Driver.iteration
      s.Compi.Driver.covered_after s.Compi.Driver.constraint_set_size
      s.Compi.Driver.nprocs s.Compi.Driver.focus
  done;
  Printf.printf "\nfinal: %d / %d reachable branches (%.1f%%), max constraint set %d, \
                 BoundedDFS bound %s, %.1fs\n"
    result.Compi.Driver.covered_branches result.Compi.Driver.reachable_branches
    (100.0 *. result.Compi.Driver.coverage_rate)
    result.Compi.Driver.max_constraint_set
    (match result.Compi.Driver.derived_bound with
    | Some b -> string_of_int b
    | None -> "n/a")
    result.Compi.Driver.wall_time
