(* Quickstart: write a small MPI program in the Mini-C DSL, mark its
   inputs, and let COMPI test it.

   The program hides a bug behind a condition that random inputs are
   unlikely to hit ([ticket = 4242]) and a second bug that only a
   non-zero rank can trigger — the kind standard concolic testing
   misses and COMPI's focus shifting finds.

     dune exec examples/quickstart.exe *)

open Minic
open Builder

(* 1. Write the program under test. [input] marks symbolic inputs, with
   optional caps (COMPI_int_with_limit). *)
let my_program =
  program
    [
      func "main" []
        [
          input "ticket" ~lo:0 ~cap:10_000 ~default:7;
          input "shards" ~lo:0 ~cap:64 ~default:4;
          decl "rank" (i 0);
          decl "size" (i 0);
          comm_rank Ast.World "rank";
          comm_size Ast.World "size";
          (* sanity check *)
          sanity (v "shards" >: i 0);
          sanity (v "shards" >=: v "size");
          (* bug 1: a magic ticket crashes the coordinator *)
          if_ (v "ticket" =: i 4242) [ abort "BUG: magic ticket" ] [];
          (* bug 2: worker ranks divide by (shards - ticket) *)
          if_ (v "rank" >: i 0)
            [
              decl "chunk" (v "shards" -: v "ticket");
              decl "quota" (i 1000 /: v "chunk");  (* FPE when ticket = shards *)
              if_ (v "quota" >: i 500) [ decl "greedy" (i 1) ] [];
            ]
            [];
          decl "total" (i 0);
          allreduce ~op:Ast.Op_sum (v "rank") ~into:(Ast.Lvar "total");
        ];
    ]

let () =
  (* 2. Validate and instrument (branch-id assignment, the CIL phase). *)
  let info = Branchinfo.instrument (Check.check_exn my_program) in
  Printf.printf "program has %d branches across %d functions\n\n"
    info.Branchinfo.total_branches
    (List.length info.Branchinfo.funcs);
  (* 3. Run a COMPI campaign: 200 iterations, starting from 4 processes. *)
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 200;
      dfs_phase_iters = 20;
      initial_nprocs = 4;
    }
  in
  let result = Compi.Driver.run ~settings info in
  Printf.printf "covered %d / %d reachable branches (%.1f%%) in %d iterations\n"
    result.Compi.Driver.covered_branches result.Compi.Driver.reachable_branches
    (100.0 *. result.Compi.Driver.coverage_rate)
    result.Compi.Driver.iterations_run;
  Printf.printf "\nbugs found:\n";
  List.iter
    (fun (b : Compi.Driver.bug) ->
      Printf.printf "  iteration %d, %d processes, rank %d: %s\n"
        b.Compi.Driver.bug_iteration b.Compi.Driver.bug_nprocs b.Compi.Driver.bug_rank
        (Fault.to_string b.Compi.Driver.bug_fault);
      Printf.printf "    error-inducing inputs: %s\n"
        (String.concat ", "
           (List.map (fun (k, x) -> Printf.sprintf "%s=%d" k x) b.Compi.Driver.bug_inputs)))
    (Compi.Driver.distinct_bugs result);
  (* 4. Compare with random testing under the same budget. *)
  let random = Compi.Random_testing.run ~settings info in
  Printf.printf "\nrandom testing with the same budget: %d branches (%.1f%%), %d bug(s)\n"
    random.Compi.Driver.covered_branches
    (100.0 *. random.Compi.Driver.coverage_rate)
    (List.length (Compi.Driver.distinct_bugs random))
