(* Beyond the paper: COMPI's input derivation also steers programs into
   communication deadlocks, which the simulator detects and reports as
   MPI errors. The program below deadlocks only when a marked input
   routes rank 1 into a receive that no one serves — a needle random
   testing rarely finds.

     dune exec examples/deadlock_detective.exe *)

open Minic
open Builder

let protocol =
  program
    [
      func "main" []
        [
          input "mode" ~lo:0 ~cap:1000 ~default:0;
          decl "rank" (i 0);
          decl "size" (i 0);
          comm_rank Ast.World "rank";
          comm_size Ast.World "size";
          sanity (v "size" >=: i 2);
          decl "buf" (i 0);
          if_ (v "rank" =: i 0)
            [
              (* the coordinator only sends in modes below 707 *)
              if_ (v "mode" <: i 707)
                [ send ~dest:(i 1) ~tag:(i 0) (v "mode") ]
                [];
            ]
            [
              if_ (v "rank" =: i 1)
                [
                  (* rank 1 always waits: deadlock when mode >= 707 *)
                  recv ~src:(i 0) ~tag:(i 0) ~into:(Ast.Lvar "buf") ();
                ]
                [];
            ];
          barrier Ast.World;
        ];
    ]

let () =
  let info = Branchinfo.instrument (Check.check_exn protocol) in
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 150;
      dfs_phase_iters = 10;
      initial_nprocs = 4;
    }
  in
  Printf.printf "searching for the deadlocking mode value...\n";
  let result = Compi.Driver.run ~settings info in
  let deadlocks =
    List.filter
      (fun (b : Compi.Driver.bug) ->
        match b.Compi.Driver.bug_fault with
        | Fault.Mpi_error { message; _ } ->
          String.length message >= 8 && String.sub message 0 8 = "deadlock"
        | _ -> false)
      result.Compi.Driver.bugs
  in
  match deadlocks with
  | [] -> Printf.printf "no deadlock found (unexpected — try more iterations)\n"
  | b :: _ ->
    Printf.printf "deadlock found at iteration %d with %d processes!\n"
      b.Compi.Driver.bug_iteration b.Compi.Driver.bug_nprocs;
    Printf.printf "  triggering inputs: %s\n"
      (String.concat ", "
         (List.map (fun (k, x) -> Printf.sprintf "%s=%d" k x) b.Compi.Driver.bug_inputs));
    Printf.printf "  (the protocol drops the send exactly when mode >= 707)\n"
