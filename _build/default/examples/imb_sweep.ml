(* Drive the synthetic IMB-MPI1 suite directly (no concolic testing):
   run each benchmark across process counts on the MPI simulator and
   print the per-benchmark checksums. This is the substrate view — what
   one concrete execution of the target looks like — and doubles as a
   stress test of the simulator's collectives.

     dune exec examples/imb_sweep.exe *)

let inputs ~iters =
  [
    ("iters", iters); ("minexp", 0); ("maxexp", 3); ("npmin", 2);
    ("run_pingpong", 1); ("run_pingping", 1); ("run_sendrecv", 1);
    ("run_exchange", 1); ("run_bcast", 1); ("run_allreduce", 1);
    ("run_reduce", 1); ("run_reduce_scatter", 1); ("run_allgather", 1);
    ("run_gather", 1); ("run_scatter", 1);
  ]

let () =
  let target = Targets.Catalog.find_exn "imb-mpi1" in
  let info = Targets.Registry.instrument target in
  Printf.printf "%-8s %8s %12s %12s %10s\n" "nprocs" "iters" "branches" "time(ms)" "faults";
  List.iter
    (fun nprocs ->
      List.iter
        (fun iters ->
          let config =
            {
              (Compi.Runner.default_config ~info) with
              Compi.Runner.nprocs;
              inputs = inputs ~iters;
              step_limit = 50_000_000;
            }
          in
          match Compi.Runner.run config with
          | Ok res ->
            Printf.printf "%-8d %8d %12d %12.2f %10d\n%!" nprocs iters
              (Concolic.Coverage.covered_branches res.Compi.Runner.coverage)
              (1000.0 *. res.Compi.Runner.wall_time)
              (List.length (Compi.Runner.faults res))
          | Error (`Platform_limit n) -> Printf.printf "platform limit at %d procs\n" n)
        [ 10; 50 ])
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "\nNote: more processes cover more branches (size-gated benchmarks), and cost\n\
     grows with the iteration count — the effect input capping controls.\n"
