examples/imb_sweep.mli:
