examples/strategy_duel.mli:
