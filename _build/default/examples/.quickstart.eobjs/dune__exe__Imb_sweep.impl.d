examples/imb_sweep.ml: Compi Concolic List Printf Targets
