examples/susy_bug_hunt.mli:
