examples/deadlock_detective.ml: Ast Branchinfo Builder Check Compi Fault List Minic Printf String
