examples/hpl_campaign.ml: Array Compi Minic Printf Sys Targets
