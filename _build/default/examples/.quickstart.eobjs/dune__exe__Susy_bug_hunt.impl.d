examples/susy_bug_hunt.ml: Compi List Minic Printf String Targets
