examples/quickstart.mli:
