examples/strategy_duel.ml: Array Compi Concolic List Minic Printf Sys Targets
