examples/quickstart.ml: Ast Branchinfo Builder Check Compi Fault List Minic Printf String
