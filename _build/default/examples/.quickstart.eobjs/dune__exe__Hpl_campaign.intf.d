examples/hpl_campaign.mli:
