(* Pipelined campaign engine: wall time vs worker count, solver-cache
   effect, and the determinism guarantee checked end to end.

   Runs the same campaign at --jobs 1/2/4/8 (cache on), plus a jobs=1
   cache-off baseline, on two targets of realistic task granularity
   (susy-hmc and hpl), and writes BENCH_parallel.json. The pool is
   sized to [min jobs cores]: asking for more domains than the host
   has cores measures scheduler thrash, not the engine, so a row whose
   requested [jobs] exceeds [cores] runs with a clamped pool and is
   flagged [oversubscribed] — scripts/bench_diff.py skips the speedup
   gate on those rows. Each row also records [queue_depth] (the peak
   claimed-but-unmerged pipeline depth) and [utilization]
   (worker busy time / (wall * pool size)). The [identical_reports]
   flag is the important invariant either way: every configuration of
   a target must produce a byte-identical canonical coverage report.

   Under --profile, one extra jobs-4 run is traced (spans included) to
   BENCH_parallel_trace.jsonl and its profile printed — the raw
   material of scripts/bench_diff.py's explanations. *)

let job_counts = [ 1; 2; 4; 8 ]

let trace_file = "BENCH_parallel_trace.jsonl"

let campaign_settings ~target ~iterations ~jobs ~cache =
  let t = Util.target target in
  let tn = t.Targets.Registry.tuning in
  {
    Compi.Campaign.default_settings with
    Compi.Campaign.base =
      {
        (Util.settings_for t) with
        Compi.Driver.iterations;
        dfs_phase_iters = tn.Targets.Registry.dfs_phase;
        seed = 7;
      };
    jobs;
    solver_cache = cache;
  }

let measure ~target ~iterations ~jobs ~cache =
  let info = Util.instrumented target in
  let settings = campaign_settings ~target ~iterations ~jobs ~cache in
  let t0 = Unix.gettimeofday () in
  let r = Compi.Campaign.run ~settings ~label:target info in
  let wall = Unix.gettimeofday () -. t0 in
  (r, wall)

let profiled_run ~target ~iterations ~jobs =
  let oc = open_out trace_file in
  Obs.Sink.install (Obs.Sink.Channel_sink oc);
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.uninstall ();
      close_out oc)
    (fun () ->
      (* the campaign owns the timeline: it enables on seeing the
         active sink and drains/disables on the way out *)
      let info = Util.instrumented target in
      let settings = campaign_settings ~target ~iterations ~jobs ~cache:true in
      ignore (Compi.Campaign.run ~settings ~label:target info));
  let f =
    Obs.Fold.of_lines (In_channel.with_open_text trace_file In_channel.input_lines)
  in
  Printf.printf "\n-- span profile of one traced --jobs %d run (%s) --\n%s" jobs
    trace_file (Obs.Fold.profile_text f)

(* All configurations of one target: jobs scaling (cache on) plus the
   jobs-1 cache-off baseline. Returns the rows and whether every
   configuration reproduced the jobs-1 report byte for byte. *)
let run_target ~cores ~reps ~target ~iterations =
  Printf.printf "\ntarget %s, %d iterations\n" target iterations;
  Printf.printf "%6s %5s %9s %8s %7s %5s %10s %10s %8s\n" "jobs" "pool" "wall(s)"
    "speedup" "util" "depth" "hit rate" "solver" "report";
  let timed jobs cache =
    (* honor the host: a pool wider than the core count measures
       oversubscription thrash, not the engine *)
    let pool = min jobs cores in
    let runs =
      Util.repeat reps (fun _ -> measure ~target ~iterations ~jobs:pool ~cache)
    in
    let r, _ = List.hd runs in
    let wall = Util.median (List.map snd runs) in
    (* utilization is a per-run ratio (that run's busy over that run's
       wall), medianed across reps — dividing one rep's busy time by
       another rep's wall can exceed 100% *)
    let util =
      Util.median
        (List.map
           (fun (r, w) ->
             if w <= 0.0 then 0.0
             else r.Compi.Campaign.worker_busy_s /. (w *. float_of_int pool))
           runs)
    in
    (r, wall, util, pool)
  in
  let base = timed 1 true in
  let base_result, base_wall, _, _ = base in
  let base_report = Compi.Campaign.coverage_report base_result in
  let row ~label jobs (r, wall, utilization, pool) =
    let hit_rate, hits, misses =
      match r.Compi.Campaign.cache with
      | Some cs ->
        let probes = cs.Smt.Cache.hits + cs.Smt.Cache.misses in
        ( (if probes = 0 then 0.0 else float_of_int cs.Smt.Cache.hits /. float_of_int probes),
          cs.Smt.Cache.hits,
          cs.Smt.Cache.misses )
      | None -> (0.0, 0, 0)
    in
    let identical = Compi.Campaign.coverage_report r = base_report in
    let oversubscribed = jobs > cores in
    Printf.printf "%6s %5d %9.3f %7.2fx %6.0f%% %5d %9.0f%% %10d %8s%s\n" label pool
      wall (base_wall /. wall) (100.0 *. utilization)
      r.Compi.Campaign.queue_depth (100.0 *. hit_rate)
      r.Compi.Campaign.solver_calls
      (if identical then "same" else "DIFFERS")
      (if oversubscribed then "  (oversubscribed)" else "");
    ( identical,
      Obs.Json.Obj
        [
          ("target", Obs.Json.Str target);
          ("jobs", Obs.Json.Int jobs);
          ("pool_size", Obs.Json.Int pool);
          (* per-row so a gate reading a single row (or a merge of
             several hosts' rows) can judge oversubscription without
             the document header *)
          ("cores", Obs.Json.Int cores);
          ("oversubscribed", Obs.Json.Bool oversubscribed);
          ("solver_cache", Obs.Json.Bool (r.Compi.Campaign.cache <> None));
          ("wall_s", Obs.Json.Float wall);
          ("speedup_vs_jobs1", Obs.Json.Float (base_wall /. wall));
          ("queue_depth", Obs.Json.Int r.Compi.Campaign.queue_depth);
          ("utilization", Obs.Json.Float utilization);
          ("cache_hits", Obs.Json.Int hits);
          ("cache_misses", Obs.Json.Int misses);
          ("cache_hit_rate", Obs.Json.Float hit_rate);
          ("solver_calls", Obs.Json.Int r.Compi.Campaign.solver_calls);
          ("rounds", Obs.Json.Int r.Compi.Campaign.rounds);
          ("executed", Obs.Json.Int r.Compi.Campaign.executed);
          ("identical_report", Obs.Json.Bool identical);
        ] )
  in
  let scaling_rows =
    List.map
      (fun jobs ->
        let measured = if jobs = 1 then base else timed jobs true in
        row ~label:(string_of_int jobs) jobs measured)
      job_counts
  in
  let off_row = row ~label:"1*" 1 (timed 1 false) (* cache off baseline *) in
  let rows = scaling_rows @ [ off_row ] in
  let all_identical = List.for_all fst rows in
  Printf.printf "determinism (%s): all configurations byte-identical: %b\n" target
    all_identical;
  (List.map snd rows, all_identical)

let run (scale : Util.scale) =
  Util.print_header "Pipelined campaign engine: jobs scaling + solver cache";
  let targets =
    [ ("susy-hmc", Util.scaled_iters scale 300); ("hpl", Util.scaled_iters scale 120) ]
  in
  let cores = Domain.recommended_domain_count () in
  let reps = max 1 scale.Util.reps in
  Printf.printf "%d core(s) available, %d rep(s) per configuration\n" cores reps;
  let per_target =
    List.map
      (fun (target, iterations) -> run_target ~cores ~reps ~target ~iterations)
      targets
  in
  let all_identical = List.for_all snd per_target in
  let rows = List.concat_map fst per_target in
  Util.compare_line ~label:"jobs-count invariance"
    ~paper:"(engine extension, beyond the paper)"
    ~measured:(if all_identical then "byte-identical reports" else "MISMATCH");
  let doc =
    Obs.Json.Obj
      [
        ( "targets",
          Obs.Json.List
            (List.map
               (fun (target, iterations) ->
                 Obs.Json.Obj
                   [
                     ("target", Obs.Json.Str target);
                     ("iterations", Obs.Json.Int iterations);
                   ])
               targets) );
        ("cores", Obs.Json.Int cores);
        ("recommended_domains", Obs.Json.Int (Domain.recommended_domain_count ()));
        ("reps", Obs.Json.Int reps);
        ("identical_reports", Obs.Json.Bool all_identical);
        ("configs", Obs.Json.List rows);
      ]
  in
  Out_channel.with_open_text "BENCH_parallel.json" (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "results written to BENCH_parallel.json\n%!";
  if !Util.profile_mode then begin
    let target, iterations = List.hd targets in
    profiled_run ~target ~iterations ~jobs:(min 4 cores)
  end
