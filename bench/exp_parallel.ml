(* Parallel campaign engine: wall time vs worker count, solver-cache
   effect, and the determinism guarantee checked end to end.

   Runs the same campaign at --jobs 1/2/4/8 (cache on), plus a jobs=1
   cache-off baseline, and writes BENCH_parallel.json. Speedups are
   whatever the machine gives: on a single-core container the parallel
   runs only add coordination overhead, so the JSON records
   [recommended_domains] (Domain.recommended_domain_count) alongside
   the times and each row's actual [pool_size] — compare speedup
   against the cores, not against the job count. The
   [identical_reports] flag is the important invariant either way:
   every configuration must produce a byte-identical canonical
   coverage report.

   Under --profile, one extra jobs-4 run is traced (spans included) to
   BENCH_parallel_trace.jsonl and its profile printed — the raw
   material of scripts/bench_diff.py's explanations. *)

let job_counts = [ 1; 2; 4; 8 ]

let trace_file = "BENCH_parallel_trace.jsonl"

let campaign_settings ~target ~iterations ~jobs ~cache =
  let t = Util.target target in
  let tn = t.Targets.Registry.tuning in
  {
    Compi.Campaign.default_settings with
    Compi.Campaign.base =
      {
        (Util.settings_for t) with
        Compi.Driver.iterations;
        dfs_phase_iters = tn.Targets.Registry.dfs_phase;
        seed = 7;
      };
    jobs;
    solver_cache = cache;
  }

let measure ~target ~iterations ~jobs ~cache =
  let info = Util.instrumented target in
  let settings = campaign_settings ~target ~iterations ~jobs ~cache in
  let t0 = Unix.gettimeofday () in
  let r = Compi.Campaign.run ~settings ~label:target info in
  let wall = Unix.gettimeofday () -. t0 in
  (r, wall)

let profiled_run ~target ~iterations =
  let oc = open_out trace_file in
  Obs.Sink.install (Obs.Sink.Channel_sink oc);
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.uninstall ();
      close_out oc)
    (fun () ->
      (* the campaign owns the timeline: it enables on seeing the
         active sink and drains/disables on the way out *)
      let info = Util.instrumented target in
      let settings = campaign_settings ~target ~iterations ~jobs:4 ~cache:true in
      ignore (Compi.Campaign.run ~settings ~label:target info));
  let f =
    Obs.Fold.of_lines (In_channel.with_open_text trace_file In_channel.input_lines)
  in
  Printf.printf "\n-- span profile of one traced --jobs 4 run (%s) --\n%s" trace_file
    (Obs.Fold.profile_text f)

let run (scale : Util.scale) =
  Util.print_header "Parallel campaign engine: jobs scaling + solver cache";
  let target = "susy-hmc" in
  let iterations = Util.scaled_iters scale 150 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "target %s, %d iterations, %d core(s) available\n" target iterations
    cores;
  Printf.printf "%6s %9s %8s %10s %10s %8s\n" "jobs" "wall(s)" "speedup" "hit rate"
    "solver" "report";
  (* one repetition per configuration beyond reps is averaged *)
  let reps = max 1 scale.Util.reps in
  let timed jobs cache =
    let runs = Util.repeat reps (fun _ -> measure ~target ~iterations ~jobs ~cache) in
    let r, _ = List.hd runs in
    let wall = Util.mean (List.map snd runs) in
    (r, wall)
  in
  let base_result, base_wall = timed 1 true in
  let base_report = Compi.Campaign.coverage_report base_result in
  let row ~label jobs (r, wall) =
    let hit_rate, hits, misses =
      match r.Compi.Campaign.cache with
      | Some cs ->
        let probes = cs.Smt.Cache.hits + cs.Smt.Cache.misses in
        ( (if probes = 0 then 0.0 else float_of_int cs.Smt.Cache.hits /. float_of_int probes),
          cs.Smt.Cache.hits,
          cs.Smt.Cache.misses )
      | None -> (0.0, 0, 0)
    in
    let identical = Compi.Campaign.coverage_report r = base_report in
    Printf.printf "%6s %9.3f %7.2fx %9.0f%% %10d %8s\n" label wall (base_wall /. wall)
      (100.0 *. hit_rate)
      r.Compi.Campaign.solver_calls
      (if identical then "same" else "DIFFERS");
    ( label,
      Obs.Json.Obj
        [
          ("jobs", Obs.Json.Int jobs);
          (* Taskpool.create clamps to >= 1; record what actually ran *)
          ("pool_size", Obs.Json.Int (max 1 jobs));
          ("solver_cache", Obs.Json.Bool (r.Compi.Campaign.cache <> None));
          ("wall_s", Obs.Json.Float wall);
          ("speedup_vs_jobs1", Obs.Json.Float (base_wall /. wall));
          ("cache_hits", Obs.Json.Int hits);
          ("cache_misses", Obs.Json.Int misses);
          ("cache_hit_rate", Obs.Json.Float hit_rate);
          ("solver_calls", Obs.Json.Int r.Compi.Campaign.solver_calls);
          ("rounds", Obs.Json.Int r.Compi.Campaign.rounds);
          ("executed", Obs.Json.Int r.Compi.Campaign.executed);
          ("identical_report", Obs.Json.Bool identical);
        ] )
  in
  let scaling_rows =
    List.map
      (fun jobs ->
        let measured = if jobs = 1 then (base_result, base_wall) else timed jobs true in
        row ~label:(string_of_int jobs) jobs measured)
      job_counts
  in
  let off_row = row ~label:"1*" 1 (timed 1 false) (* cache off baseline *) in
  let rows = scaling_rows @ [ off_row ] in
  let all_identical =
    List.for_all
      (fun (_, j) ->
        match Obs.Json.member "identical_report" j with
        | Some (Obs.Json.Bool b) -> b
        | Some _ | None -> false)
      rows
  in
  Printf.printf "determinism: all configurations byte-identical: %b\n" all_identical;
  Util.compare_line ~label:"jobs-count invariance"
    ~paper:"(engine extension, beyond the paper)"
    ~measured:(if all_identical then "byte-identical reports" else "MISMATCH");
  let doc =
    Obs.Json.Obj
      [
        ("target", Obs.Json.Str target);
        ("iterations", Obs.Json.Int iterations);
        ("cores", Obs.Json.Int cores);
        ("recommended_domains", Obs.Json.Int (Domain.recommended_domain_count ()));
        ("reps", Obs.Json.Int reps);
        ("identical_reports", Obs.Json.Bool all_identical);
        ("configs", Obs.Json.List (List.map snd rows));
      ]
  in
  Out_channel.with_open_text "BENCH_parallel.json" (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string doc);
      Out_channel.output_char oc '\n');
  Printf.printf "results written to BENCH_parallel.json\n%!";
  if !Util.profile_mode then profiled_run ~target ~iterations
