(* Experiment harness entry point: regenerates every table and figure of
   the paper's evaluation (section VI) on the simulated substrate, plus
   Bechamel micro-benchmarks of the hot kernels.

     dune exec bench/main.exe                 — everything, quick budgets
     dune exec bench/main.exe -- fig4 table6  — selected experiments
     dune exec bench/main.exe -- --scale 4 all — 4x longer budgets
     dune exec bench/main.exe -- --profile parallel — also trace one
       jobs-4 campaign and print its span profile

   Absolute numbers differ from the paper (simulator vs the authors'
   testbed; budgets scaled from hours to seconds); the shapes — who
   wins, by roughly what factor, where curves saturate — are the
   reproduction target. See EXPERIMENTS.md for the side-by-side. *)

let experiments =
  [
    ("table3", "Table III: target complexity", Exp_table3.run);
    ("fig4", "Figure 4: search strategies on HPL", Exp_fig4.run);
    ("fig6", "Figure 6: HPL cost vs matrix size", Exp_fig6.run);
    ("fig8", "Figure 8: input capping", Exp_fig8.run);
    ("table4", "Table IV: one-way vs two-way instrumentation", Exp_table4.run);
    ("table5", "Table V + Figure 9: constraint-set reduction", Exp_table5.run);
    ("table6", "Table VI: framework vs No_Fwk vs Random", Exp_table6.run);
    ("bugs", "Section VI-A: the four SUSY-HMC bugs", Exp_bugs.run);
    ("ablation", "Design-decision ablations (beyond the paper)", Exp_ablation.run);
    ("parallel", "Parallel campaign engine: jobs scaling + solver cache", Exp_parallel.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref Util.default_scale in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: x :: rest ->
      let f = float_of_string x in
      scale := { !scale with Util.time = f; iters = f };
      parse rest
    | "--reps" :: x :: rest ->
      scale := { !scale with Util.reps = int_of_string x };
      parse rest
    | "--profile" :: rest ->
      Util.profile_mode := true;
      parse rest
    | "all" :: rest -> parse rest
    | name :: rest ->
      if List.exists (fun (n, _, _) -> n = name) experiments || name = "micro" then
        selected := name :: !selected
      else begin
        Printf.eprintf "unknown experiment %s; available: %s micro\n" name
          (String.concat " " (List.map (fun (n, _, _) -> n) experiments));
        exit 2
      end;
      parse rest
  in
  parse args;
  let wanted name = !selected = [] || List.mem name !selected in
  Printf.printf "COMPI reproduction benchmark harness (scale %.2g, %d reps)\n"
    !scale.Util.time !scale.Util.reps;
  List.iter (fun (name, _, f) -> if wanted name then f !scale) experiments;
  if wanted "micro" then begin
    Microbench.run ();
    Util.write_metrics_json "BENCH_microbench.json"
  end;
  Printf.printf "\nDone.\n"
