(* Shared helpers for the experiment harness: per-target settings derived
   from the catalogue tuning, small table printers, and the repetition
   machinery. Budgets are scaled-down versions of the paper's (hours ->
   seconds); the [scale] factor restores longer runs when desired. *)

type scale = { time : float; iters : float; reps : int }

let default_scale = { time = 1.0; iters = 1.0; reps = 2 }

(* --profile: experiments that support it additionally run one traced
   configuration and print its span profile (see exp_parallel). *)
let profile_mode = ref false

let scaled_iters scale n = max 5 (int_of_float (float_of_int n *. scale.iters))
let scaled_time scale s = s *. scale.time

let settings_for (t : Targets.Registry.t) =
  let tn = t.Targets.Registry.tuning in
  {
    Compi.Driver.default_settings with
    Compi.Driver.dfs_phase_iters = tn.Targets.Registry.dfs_phase;
    depth_bound = None;
    initial_nprocs = tn.Targets.Registry.initial_nprocs;
    step_limit = tn.Targets.Registry.step_limit;
  }

let instrumented name = Targets.Registry.instrument (Targets.Catalog.find_exn name)

let target name = Targets.Catalog.find_exn name

(* Fixed per-program reachable-branch denominator, the paper's Table III
   convention: estimated once from a reference COMPI campaign and reused
   by every experiment on that program, so ablations that fail early do
   not shrink their own denominator. *)
let reachable_cache : (string, int) Hashtbl.t = Hashtbl.create 8

let reference_reachable name =
  match Hashtbl.find_opt reachable_cache name with
  | Some r -> r
  | None ->
    let t = target name in
    let info = Targets.Registry.instrument t in
    let settings =
      {
        Compi.Driver.default_settings with
        Compi.Driver.iterations = 400;
        dfs_phase_iters = t.Targets.Registry.tuning.Targets.Registry.dfs_phase;
        initial_nprocs = t.Targets.Registry.tuning.Targets.Registry.initial_nprocs;
        step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
        seed = 1;
      }
    in
    let r = Compi.Driver.run ~settings info in
    let reachable = max 1 r.Compi.Driver.reachable_branches in
    Hashtbl.replace reachable_cache name reachable;
    reachable

let fixed_rate name (r : Compi.Driver.result) =
  100.0 *. float_of_int r.Compi.Driver.covered_branches
  /. float_of_int (reference_reachable name)

(* simple fixed-width table printing *)
let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_row fmt = Printf.printf fmt

let rate (r : Compi.Driver.result) = 100.0 *. r.Compi.Driver.coverage_rate

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

(* Median is the robust choice for wall-clock rows: one descheduled rep
   shifts the mean by its full overshoot but leaves the median alone. *)
let median xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let nth k = List.nth sorted k in
    if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0
let fmax xs = List.fold_left Float.max neg_infinity xs
let imax xs = List.fold_left max min_int xs

let repeat reps f = List.init reps f

(* Paper-vs-measured one-liner used throughout EXPERIMENTS.md *)
let compare_line ~label ~paper ~measured =
  Printf.printf "  %-40s paper: %-18s measured: %s\n%!" label paper measured

(* Persist the whole metrics registry (bench gauges plus whatever the
   engine accumulated while benchmarks ran: solver latency histograms,
   interpreter step counts, phase totals) — the BENCH_*.json perf
   trajectory the roadmap tracks across PRs. *)
let write_metrics_json path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string (Obs.Metrics.snapshot_json ()));
      Out_channel.output_char oc '\n');
  Printf.printf "metrics snapshot written to %s\n%!" path
