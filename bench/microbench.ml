(* Bechamel micro-benchmarks for the hot kernels underpinning every
   experiment: the solver, the interpreter in heavy vs light mode (the
   per-process cost difference that two-way instrumentation exploits),
   and path logging with and without constraint-set reduction. *)

open Bechamel
open Toolkit

let solver_test =
  (* the paper's Figure 1 system plus a small chain *)
  let cs =
    [
      Smt.Constr.cmp (Smt.Linexp.var 0) Smt.Constr.Eq (Smt.Linexp.const 100);
      Smt.Constr.cmp
        (Smt.Linexp.of_terms [ (1, 0); (2, 1) ] 0)
        Smt.Constr.Le (Smt.Linexp.const 400);
      Smt.Constr.cmp (Smt.Linexp.var 1) Smt.Constr.Lt (Smt.Linexp.var 2);
      Smt.Constr.cmp (Smt.Linexp.var 2) Smt.Constr.Lt (Smt.Linexp.const 50);
    ]
  in
  Test.make ~name:"solver: 4-constraint incremental set"
    (Staged.stage (fun () ->
         match Smt.Solver.solve cs with
         | Smt.Solver.Sat _ -> ()
         | Smt.Solver.Unsat | Smt.Solver.Unknown -> assert false))

let interp_test ~name ~heavy =
  let info = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig2") in
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs = 4;
      inputs = [ ("x", 10); ("y", 50) ];
      two_way = not heavy;
    }
  in
  Test.make ~name
    (Staged.stage (fun () ->
         match Compi.Runner.run config with
         | Ok _ -> ()
         | Error (`Platform_limit _) -> assert false))

let pathlog_test ~name ~reduce =
  let constr =
    Some (Smt.Constr.cmp (Smt.Linexp.var 0) Smt.Constr.Lt (Smt.Linexp.const 100))
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let log = Concolic.Pathlog.create ~reduce in
         for k = 0 to 999 do
           Concolic.Pathlog.record log ~cond_id:(k mod 7) ~taken:(k mod 11 < 9) ~constr
         done;
         ignore (Concolic.Pathlog.constraint_count log)))

(* The observatory fold over a synthetic 1k-line trace: the hot path of
   [compi-cli replay/report] on a real campaign's JSONL. *)
let fold_test =
  let lines =
    List.init 1000 (fun k ->
        let ev =
          match k mod 5 with
          | 0 ->
            Obs.Event.Iter_end
              {
                iteration = k / 5;
                covered = min 40 (k / 20);
                reachable = 42;
                cs_size = 30;
                faults = 0;
                restarted = false;
                exec_s = 0.001;
                solve_s = 0.0005;
              }
          | 1 ->
            Obs.Event.Lineage_test
              {
                test = k / 5;
                parent = (k / 5) - 1;
                origin = (if k < 5 then "seed" else "negated");
                branch = k mod 37;
                index = k mod 13;
                cached = k mod 3 = 0;
              }
          | 2 ->
            Obs.Event.Lineage_negation
              {
                parent = k / 5;
                index = k mod 13;
                branch = k mod 37;
                outcome = (if k mod 4 = 0 then Obs.Event.Unsat else Obs.Event.Sat);
                cached = k mod 3 = 0;
              }
          | 3 -> Obs.Event.Msg_matched { src = k mod 4; dst = (k + 1) mod 4; comm = 0; tag = 0 }
          | _ ->
            Obs.Event.Solver_call
              {
                incremental = true;
                outcome = Obs.Event.Sat;
                nodes = 20;
                vars = 5;
                constraints = 9;
                time_s = 1e-4;
              }
        in
        Obs.Json.to_string (Obs.Event.to_json ~t:(float_of_int k *. 0.001) ev))
  in
  Test.make ~name:"fold: 1000-line trace -> report"
    (Staged.stage (fun () ->
         let f = Obs.Fold.of_lines lines in
         ignore (Obs.Fold.to_text ~stable:true f)))

let tests =
  Test.make_grouped ~name:"compi"
    [
      solver_test;
      interp_test ~name:"runner: fig2 x4 procs, two-way" ~heavy:false;
      interp_test ~name:"runner: fig2 x4 procs, one-way" ~heavy:true;
      pathlog_test ~name:"pathlog: 1000 events, reduction" ~reduce:true;
      pathlog_test ~name:"pathlog: 1000 events, no reduction" ~reduce:false;
      fold_test;
    ]

(* "compi/solver: 4-constraint incremental set" -> a metric-safe name *)
let gauge_name name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> Buffer.add_char b c
      | '/' | ':' -> Buffer.add_char b '.'
      | ' ' -> Buffer.add_char b '_'
      | _ -> ())
    name;
  "bench." ^ Buffer.contents b ^ ".ns_per_run"

(* The span subsystem must be invisible when off and near-free when on:
   with the timeline disabled, [span]/[record] are a single flag read
   and must not touch the minor heap; enabled, the whole campaign
   instrumentation may cost at most 5% on the end-to-end interpreter
   ns/run. Direct min-of-reps timing rather than Bechamel — the
   comparison needs identical workloads either side of one global
   toggle, and min-of-reps is robust to scheduler noise. *)
let span_overhead_check () =
  Util.print_header "Span overhead (timeline off vs on)";
  let info = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig2") in
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs = 4;
      inputs = [ ("x", 10); ("y", 50) ];
      two_way = true;
    }
  in
  let run_once () =
    match Compi.Runner.run config with
    | Ok _ -> ()
    | Error (`Platform_limit _) -> assert false
  in
  let time_n n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      run_once ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let n = 40 and reps = 5 in
  run_once () (* warm caches before either side is timed *);
  let min_of f = List.fold_left Float.min infinity (List.init reps (fun _ -> f ())) in
  let off_ns = 1e9 *. min_of (fun () -> time_n n) in
  Obs.Timeline.enable ();
  let on_ns = 1e9 *. min_of (fun () -> time_n n) in
  Obs.Timeline.disable ();
  let ratio = on_ns /. off_ns in
  Obs.Metrics.set (Obs.Metrics.gauge "bench.span_overhead.off.ns_per_run") off_ns;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.span_overhead.on.ns_per_run") on_ns;
  Obs.Metrics.set (Obs.Metrics.gauge "bench.span_overhead.ratio") ratio;
  Printf.printf "  %-45s %12.0f ns/run\n" "runner, timeline off" off_ns;
  Printf.printf "  %-45s %12.0f ns/run (%.3fx)\n%!" "runner, timeline on" on_ns ratio;
  if ratio > 1.05 then begin
    Printf.eprintf "FAIL: span overhead %.3fx exceeds the 1.05x budget\n" ratio;
    exit 1
  end;
  let f = Sys.opaque_identity (fun () -> ()) in
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    Obs.Timeline.span "bench" f;
    Obs.Timeline.record ~kind:"bench" ~t0:0 ~t1:0
  done;
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "  %-45s %12.1f words / %d calls\n%!" "disabled-path minor allocation" dw
    iters;
  (* the measurement brackets themselves box a couple of floats; the
     loop body must contribute nothing *)
  if dw > 256.0 then begin
    Printf.eprintf "FAIL: disabled span path allocated %.0f minor words\n" dw;
    exit 1
  end

(* Compiled-vs-interpreted executor pair: the same hot kernel straight
   through Interp.run and Compile.run — no scheduler, no path log — so
   the ratio isolates the executor itself. Direct min-of-reps timing
   for the same reason as [span_overhead_check]: a gated ratio needs
   matched workloads, and min-of-reps is robust to scheduler noise.
   Gate: the compiled executor must be at least 2x faster (hard fail),
   with 5x the target the docs advertise (warn below it). *)
let exec_mode_check () =
  Util.print_header "Executor: interpreter vs closure-compiled";
  let open Minic in
  let p =
    (* shaped like the paper's numeric targets: a stencil-ish sweep
       with realistic identifier lengths (the interpreter hashes each
       name on every access), nested loops, data-dependent branches,
       and a helper called per cell (the interpreter builds a fresh
       hashtable frame per call; the compiled executor, three arrays) *)
    let open Builder in
    program
      [
        func "update"
          [ ("load", Ast.Tint); ("level", Ast.Tint) ]
          [
            if_ (v "load" >: v "level")
              [ ret (v "level" +: v "load" -: i 1) ]
              [ ret (v "level" -: v "load" +: i 1) ];
          ];
        func "main" []
          ([
             input "bias" ~default:3;
             decl "level" (v "bias");
             decl "load" (i 0);
             decl_arr "grid" (i 16);
           ]
          @ for_ "step" (i 0) (i 100)
              ([
                 aset "grid" (v "step" %: i 16)
                   ((v "step" *: i 3) -: (v "level" *: i 2) +: (v "step" %: i 7));
               ]
              @ for_ "cell" (i 0) (i 16)
                  [
                    assign "load"
                      ((((idx "grid" (v "cell") *: i 3) +: (v "step" *: v "cell"))
                       %: i 17)
                      +: (((idx "grid" ((v "cell" +: v "step") %: i 16) -: v "level")
                          *: i 2)
                         %: i 9)
                      +: (((v "step" *: i 5) -: (v "cell" *: i 3)) %: i 11));
                    if_ (v "load" >: v "level")
                      [ assign "level" (v "level" +: v "load" -: i 1) ]
                      [ assign "level" (v "level" -: v "load" +: i 1) ];
                  ]
              @ [ call_assign "level" "update" [ v "load"; v "level" ] ]));
      ]
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let cp = Compile.compile info.Branchinfo.program in
  let hooks = Interp.plain_hooks () in
  let time_ns name exec =
    let n = 60 and reps = 5 in
    (match exec () with Ok () -> () | Error _ -> assert false);
    (* quiesce the heap so the ratio is not hostage to whatever GC
       state the bechamel phase left behind *)
    Gc.compact ();
    let w0 = Gc.minor_words () in
    ignore (exec ());
    Printf.printf "  %-45s %12.0f minor words/run\n%!" (name ^ " allocation")
      (Gc.minor_words () -. w0);
    let time_n () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        ignore (exec ())
      done;
      1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int n
    in
    let ns = List.fold_left Float.min infinity (List.init reps (fun _ -> time_n ())) in
    Obs.Metrics.set (Obs.Metrics.gauge (Printf.sprintf "bench.%s.ns_per_run" name)) ns;
    Printf.printf "  %-45s %12.0f ns/run\n%!" name ns;
    ns
  in
  let interp_ns = time_ns "interp" (fun () -> Interp.run hooks info.Branchinfo.program) in
  let compiled_ns = time_ns "compiled" (fun () -> Compile.run cp hooks) in
  let speedup = interp_ns /. compiled_ns in
  Obs.Metrics.set (Obs.Metrics.gauge "bench.exec_mode.speedup") speedup;
  Printf.printf "  %-45s %12.1fx\n%!" "compiled speedup" speedup;
  if speedup < 2.0 then begin
    Printf.eprintf "FAIL: compiled executor only %.2fx over the interpreter (< 2x)\n"
      speedup;
    exit 1
  end
  else if speedup < 5.0 then
    Printf.eprintf "WARN: compiled executor %.2fx over the interpreter (target >= 5x)\n"
      speedup

let run () =
  Util.print_header "Micro-benchmarks (Bechamel, ns/run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Obs.Metrics.set (Obs.Metrics.gauge (gauge_name name)) est;
        Printf.printf "  %-45s %12.0f ns/run\n%!" name est
      | Some _ | None -> Printf.printf "  %-45s %12s\n%!" name "n/a")
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  exec_mode_check ();
  span_overhead_check ()
