(* compi-cli: command-line front end for the COMPI reproduction.

     compi-cli list                          targets and their tuning
     compi-cli show susy-hmc                 pretty-print a target
     compi-cli test hpl --iterations 500     run a COMPI campaign
     compi-cli random hpl --time 10          random-testing baseline
     compi-cli exec susy-hmc -n 4 -i nt=4    one concrete run *)

open Cmdliner

let target_conv =
  let parse s =
    match Targets.Catalog.find s with
    | Some t -> Ok t
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown target %s (try: %s)" s
             (String.concat ", " (Targets.Catalog.names ()))))
  in
  let print ppf (t : Targets.Registry.t) = Format.fprintf ppf "%s" t.Targets.Registry.name in
  Arg.conv (parse, print)

let kv_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some k ->
      let key = String.sub s 0 k in
      let value = String.sub s (k + 1) (String.length s - k - 1) in
      (try Ok (key, int_of_string value) with Failure _ -> Error (`Msg "bad value"))
    | None -> Error (`Msg (Printf.sprintf "expected key=value, got %s" s))
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%d" k v in
  Arg.conv (parse, print)

let target_arg =
  Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET")

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %8s %8s %6s %6s  %s\n" "name" "branches" "sloc" "dfs-x"
      "bound" "description";
    List.iter
      (fun (t : Targets.Registry.t) ->
        let info = Targets.Registry.instrument t in
        let tn = t.Targets.Registry.tuning in
        Printf.printf "%-10s %8d %8d %6d %6d  %s\n" t.Targets.Registry.name
          info.Minic.Branchinfo.total_branches
          (Minic.Pretty.source_lines t.Targets.Registry.program)
          tn.Targets.Registry.dfs_phase tn.Targets.Registry.depth_bound
          t.Targets.Registry.description)
      (Targets.Catalog.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available targets")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run (t : Targets.Registry.t) =
    let info = Targets.Registry.instrument t in
    print_endline (Minic.Pretty.program_to_string info.Minic.Branchinfo.program)
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a target program (C-flavoured)")
    Term.(const run $ target_arg)

(* ------------------------------------------------------------------ *)
(* test / random                                                       *)
(* ------------------------------------------------------------------ *)

(* The campaign flags are shared between subcommands; [?docs] lets the
   [run] subcommand sort them into its grouped help sections while
   [test]/[random]/[test-file] keep the flat default layout. *)
let iterations_arg ?docs () =
  Arg.(
    value & opt int 500
    & info [ "iterations"; "I" ] ?docs ~docv:"N" ~doc:"Iteration budget")

let time_arg ?docs () =
  Arg.(
    value
    & opt (some float) None
    & info [ "time" ] ?docs ~docv:"SECONDS" ~doc:"Wall-clock budget (overrides iterations)")

let seed_arg ?docs () =
  Arg.(value & opt int 42 & info [ "seed" ] ?docs ~docv:"SEED" ~doc:"Random seed")

let nprocs_arg ?docs () =
  Arg.(
    value
    & opt (some int) None
    & info [ "nprocs"; "n" ] ?docs ~docv:"N" ~doc:"Initial number of processes")

let cap_arg ?docs () =
  Arg.(
    value & opt_all kv_conv []
    & info [ "cap" ] ?docs ~docv:"INPUT=CAP" ~doc:"Override an input's cap (repeatable)")

let no_reduce_arg =
  Arg.(value & flag & info [ "no-reduce" ] ~doc:"Disable constraint-set reduction")

let one_way_arg =
  Arg.(value & flag & info [ "one-way" ] ~doc:"Disable two-way instrumentation")

let no_fwk_arg =
  Arg.(
    value & flag
    & info [ "no-fwk" ]
        ~doc:"Disable the MPI framework: fixed focus and process count, focus-only coverage")

let strategy_arg ?docs () =
  let choices =
    Arg.enum
      [
        ("dfs", `Dfs); ("random-branch", `Random_branch); ("uniform", `Uniform);
        ("cfg", `Cfg); ("generational", `Generational);
      ]
  in
  Arg.(value & opt choices `Dfs & info [ "strategy" ] ?docs ~docv:"STRATEGY"
         ~doc:"Search strategy: $(b,dfs) (two-phase BoundedDFS, the COMPI default), \
               $(b,random-branch), $(b,uniform), $(b,cfg), or $(b,generational) \
               (SAGE-style, beyond the paper)")

let exec_mode_arg ?docs () =
  let choices =
    Arg.enum
      [
        ("compiled", Compi.Runner.Exec_compiled); ("interp", Compi.Runner.Exec_interp);
      ]
  in
  Arg.(
    value & opt choices Compi.Runner.Exec_compiled
    & info [ "exec-mode" ] ?docs ~docv:"interp|compiled"
        ~doc:
          "How each simulated process executes the target: $(b,compiled) (default) \
           compiles it to closures once per campaign; $(b,interp) keeps the \
           tree-walking interpreter as the differential oracle. The two modes are \
           observationally identical — same verdicts, coverage, path logs and \
           telemetry — so reports and checkpoints carry across")

let settings_of (t : Targets.Registry.t) iterations time seed nprocs caps no_reduce one_way
    no_fwk strategy =
  let tn = t.Targets.Registry.tuning in
  let info = Targets.Registry.instrument t in
  let strategy =
    match strategy with
    | `Dfs -> Compi.Driver.Two_phase_dfs
    | `Random_branch -> Compi.Driver.Fixed_strategy Concolic.Strategy.Random_branch
    | `Uniform -> Compi.Driver.Fixed_strategy Concolic.Strategy.Uniform_random
    | `Cfg ->
      Compi.Driver.Fixed_strategy (Concolic.Strategy.Cfg_directed (Minic.Cfg.build info))
    | `Generational ->
      Compi.Driver.Fixed_strategy
        (Concolic.Strategy.Generational tn.Targets.Registry.depth_bound)
  in
  ( info,
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = (if time = None then iterations else max_int);
      time_budget = time;
      dfs_phase_iters = tn.Targets.Registry.dfs_phase;
      initial_nprocs = Option.value nprocs ~default:tn.Targets.Registry.initial_nprocs;
      step_limit = tn.Targets.Registry.step_limit;
      cap_overrides = caps;
      reduce = not no_reduce;
      two_way = not one_way;
      framework = not no_fwk;
      strategy;
      seed;
    } )

let report (r : Compi.Driver.result) =
  Printf.printf "iterations      %d\n" r.Compi.Driver.iterations_run;
  Printf.printf "covered         %d / %d reachable (%.1f%%), %d total\n"
    r.Compi.Driver.covered_branches r.Compi.Driver.reachable_branches
    (100.0 *. r.Compi.Driver.coverage_rate)
    r.Compi.Driver.total_branches;
  Printf.printf "max constraint  %d%s\n" r.Compi.Driver.max_constraint_set
    (match r.Compi.Driver.derived_bound with
    | Some b -> Printf.sprintf " (derived BoundedDFS bound %d)" b
    | None -> "");
  Printf.printf "wall time       %.2fs\n" r.Compi.Driver.wall_time;
  let bugs = Compi.Driver.distinct_bugs r in
  Printf.printf "distinct bugs   %d\n" (List.length bugs);
  List.iter
    (fun (b : Compi.Driver.bug) ->
      Printf.printf "  [iter %d, np %d] %s\n" b.Compi.Driver.bug_iteration
        b.Compi.Driver.bug_nprocs
        (Minic.Fault.to_string b.Compi.Driver.bug_fault);
      Printf.printf "     inputs: %s\n"
        (String.concat ", "
           (List.map (fun (k, x) -> Printf.sprintf "%s=%d" k x) b.Compi.Driver.bug_inputs));
      if b.Compi.Driver.bug_context <> [] then
        Printf.printf "     focus path tail: %s\n"
          (String.concat " -> "
             (List.map
                (fun (cond, taken) ->
                  Printf.sprintf "%d%s" cond (if taken then "T" else "F"))
                b.Compi.Driver.bug_context)))
    bugs

(* ------------------------------------------------------------------ *)
(* telemetry plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let trace_events_arg ?docs () =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-events" ] ?docs ~docv:"FILE.jsonl"
        ~doc:"Stream structured telemetry events to $(docv) as JSON Lines")

let metrics_arg ?docs () =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ?docs ~docv:"FILE.json"
        ~doc:"Write the metrics registry snapshot (counters, histograms, phase totals) \
              to $(docv) when the campaign ends")

(* Install a JSONL sink for the duration of [f]; afterwards dump the
   metrics snapshot. Both files are optional and independent.

   While the sink is live, SIGINT/SIGTERM flush the buffered tail to
   the trace file before re-raising the default action, so a killed
   campaign still leaves a replayable trace. (The campaign engine may
   override these handlers for checkpointing while it runs — it parks
   at a merge point instead of dying, and restores ours on the way
   out, so both behaviours compose.) *)
let with_telemetry ~trace_events ~metrics f =
  let oc = Option.map open_out trace_events in
  (match oc with
  | Some oc ->
    Obs.Sink.install (Obs.Sink.Channel_sink oc);
    (* live traces should be tailable: flush the channel every ~half
       second (or 512 events) so [compi-cli watch --trace] sees events
       while the campaign runs, not just at exit. Autoflush is off by
       default (tests install bare sinks); only the CLI arms it. *)
    Obs.Sink.set_autoflush ~events:512 ~seconds:0.5 ();
    (* tracing implies spans: arm the per-domain timeline so the trace
       carries the material [compi-cli profile] folds *)
    Obs.Timeline.enable ()
  | None -> ());
  let old_handlers =
    if Option.is_none oc then []
    else
      List.filter_map
        (fun sg ->
          match
            Sys.signal sg
              (Sys.Signal_handle
                 (fun _ ->
                   Obs.Sink.flush_now ();
                   (try Sys.set_signal sg Sys.Signal_default
                    with Invalid_argument _ | Sys_error _ -> ());
                   Unix.kill (Unix.getpid ()) sg))
          with
          | old -> Some (sg, old)
          | exception (Invalid_argument _ | Sys_error _) -> None)
        [ Sys.sigint; Sys.sigterm ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (sg, old) ->
          try Sys.set_signal sg old with Invalid_argument _ | Sys_error _ -> ())
        old_handlers;
      (match oc with
      | Some chan ->
        Obs.Timeline.drain ();
        Obs.Timeline.disable ();
        Obs.Sink.uninstall ();
        close_out chan;
        Printf.printf "events written to %s\n"
          (Option.get trace_events)
      | None -> ());
      match metrics with
      | Some path ->
        Out_channel.with_open_text path (fun mc ->
            Out_channel.output_string mc (Obs.Json.to_string (Obs.Metrics.snapshot_json ()));
            Out_channel.output_char mc '\n');
        Printf.printf "metrics snapshot written to %s\n" path
      | None -> ())
    f

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-bugs" ] ~docv:"PATH" ~doc:"Save error-inducing inputs as test cases")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Dump per-iteration statistics as CSV")

let curve_arg =
  Arg.(value & flag & info [ "curve" ] ~doc:"Print an ASCII coverage curve")

let uncovered_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "uncovered" ] ~docv:"N" ~doc:"List up to N still-uncovered branches")

let annotate_arg =
  Arg.(
    value & flag
    & info [ "annotate" ] ~doc:"Print the program with per-branch coverage markers")

let test_cmd =
  let run t iterations time seed nprocs caps no_reduce one_way no_fwk strategy save_bugs
      csv curve uncovered_n annotate trace_events metrics =
    let info, settings =
      settings_of t iterations time seed nprocs caps no_reduce one_way no_fwk strategy
    in
    let result =
      with_telemetry ~trace_events ~metrics (fun () ->
          Compi.Driver.run ~settings ~label:t.Targets.Registry.name info)
    in
    report result;
    if curve then print_string (Compi.Report.ascii_curve result);
    (match uncovered_n with
    | Some n ->
      let misses = Compi.Report.uncovered info result.Compi.Driver.coverage in
      Printf.printf "\nuncovered branches (%d total):\n" (List.length misses);
      List.iteri
        (fun k (cond, dir, func) ->
          if k < n then
            Printf.printf "  cond %d %s side in %s\n" cond (if dir then "T" else "F") func)
        misses
    | None -> ());
    if annotate then
      print_string (Compi.Report.annotate info result.Compi.Driver.coverage);
    (match csv with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Compi.Report.stats_csv result));
      Printf.printf "statistics written to %s\n" path
    | None -> ());
    match save_bugs with
    | Some path ->
      let cases =
        List.map
          (Compi.Testcase.of_bug ~target:t.Targets.Registry.name)
          (Compi.Driver.distinct_bugs result)
      in
      Compi.Testcase.save ~path cases;
      Printf.printf "%d test case(s) written to %s\n" (List.length cases) path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Run a COMPI concolic-testing campaign on a target")
    Term.(
      const run $ target_arg $ iterations_arg () $ time_arg () $ seed_arg ()
      $ nprocs_arg () $ cap_arg () $ no_reduce_arg $ one_way_arg $ no_fwk_arg
      $ strategy_arg () $ save_arg $ csv_arg $ curve_arg $ uncovered_arg $ annotate_arg
      $ trace_events_arg () $ metrics_arg ())

(* ------------------------------------------------------------------ *)
(* run: a campaign with telemetry-first ergonomics                     *)
(* ------------------------------------------------------------------ *)

(* run --help groups its many flags by subsystem; these are the section
   headings (scripts/check_docs.py asserts the live help carries them). *)
let s_execution = "EXECUTION OPTIONS"
let s_parallelism = "PARALLELISM OPTIONS"
let s_checkpoint = "CHECKPOINT OPTIONS"
let s_telemetry = "TELEMETRY OPTIONS"

let schedules_arg =
  let choice = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(
    value & opt choice false
    & info [ "schedules" ] ~docs:s_execution ~docv:"on|off"
        ~doc:
          "Explore the schedule dimension (default $(b,off)): wildcard receives \
           are matched lazily under a replayable prescription, and the campaign \
           enumerates alternative match orders (partial-order reduced) alongside \
           input negations — each test is an (input, schedule) pair")

let schedule_depth_arg =
  Arg.(
    value & opt int 8
    & info [ "schedule-depth" ] ~docs:s_execution ~docv:"N"
        ~doc:
          "Only the first $(docv) wildcard choice points of a run may fork \
           alternative schedules (default $(b,8)) — the schedule-space analogue \
           of the DFS depth bound. Only meaningful with $(b,--schedules on)")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docs:s_parallelism ~docv:"N"
        ~doc:
          "Worker domains for the parallel campaign engine. Campaign results are \
           identical for every value (under an iteration budget); $(docv) only \
           changes wall-clock time")

let batch_arg =
  Arg.(
    value & opt int 4
    & info [ "batch" ] ~docs:s_parallelism ~docv:"N"
        ~doc:
          "Negation candidates dispatched per round. Independent of $(b,--jobs): \
           changing the batch changes the search trajectory, changing the job \
           count never does")

let solver_cache_arg =
  let choice = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(
    value & opt choice true
    & info [ "solver-cache" ] ~docs:s_parallelism ~docv:"on|off"
        ~doc:"Counterexample cache in front of the solver (default $(b,on))")

let coverage_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "coverage-report" ] ~docs:s_telemetry ~docv:"FILE"
        ~doc:
          "Write the canonical coverage report to $(docv) — byte-identical across \
           $(b,--jobs) values; CI diffs it")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docs:s_checkpoint ~docv:"DIR"
        ~doc:
          "Write crash-safe campaign snapshots under $(docv) (periodically, on \
           SIGINT/SIGTERM, and at exit); resume later with $(b,--resume)")

let checkpoint_every_arg =
  Arg.(
    value & opt int 50
    & info [ "checkpoint-every" ] ~docs:s_checkpoint ~docv:"N"
        ~doc:
          "Snapshot cadence in iterations (default $(b,50); $(b,0) keeps only the \
           at-exit snapshot). Only meaningful with $(b,--checkpoint)")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ] ~docs:s_checkpoint
        ~doc:
          "Resume the campaign from the snapshot under $(b,--checkpoint) and \
           continue toward the (possibly larger) budget; the finished campaign is \
           byte-identical to an uninterrupted run")

let status_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "status-file" ] ~docs:s_telemetry ~docv:"FILE.json"
        ~doc:
          "Publish a live status snapshot (one flat JSON object, written \
           atomically via temp file + rename) to $(docv) at every merge point; \
           read it with $(b,compi-cli status) or $(b,compi-cli watch)")

let run_ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docs:s_telemetry ~docv:"LEDGER.jsonl"
        ~doc:
          "Append a versioned run-summary record to the $(docv) JSONL store when \
           the campaign ends; inspect trends with $(b,compi-cli history) and diff \
           runs with $(b,compi-cli compare)")

let run_cmd =
  let target_opt_arg =
    Arg.(
      required
      & opt (some target_conv) None
      & info [ "target" ] ~docs:s_execution ~docv:"TARGET"
          ~doc:"Target program (see $(b,compi-cli list))")
  in
  let run t iterations time seed nprocs caps strategy exec_mode schedules schedule_depth
      jobs batch solver_cache checkpoint checkpoint_every resume coverage_report
      status_file ledger trace_events metrics =
    let info, base =
      settings_of t iterations time seed nprocs caps false false false strategy
    in
    let base = { base with Compi.Driver.exec_mode; schedules; schedule_depth } in
    let settings =
      {
        Compi.Campaign.default_settings with
        Compi.Campaign.base;
        jobs;
        batch;
        solver_cache;
        checkpoint;
        checkpoint_every;
        resume;
        status_file;
        ledger;
      }
    in
    let result =
      try
        with_telemetry ~trace_events ~metrics (fun () ->
            Compi.Campaign.run ~settings ~label:t.Targets.Registry.name info)
      with Compi.Checkpoint.Load_error e ->
        Printf.eprintf "cannot resume: %s\n" (Compi.Checkpoint.error_to_string e);
        exit 1
    in
    report result.Compi.Campaign.summary;
    Printf.printf "engine          %d round(s), %d execution(s), %d solver call(s), %d job(s), %s executor\n"
      result.Compi.Campaign.rounds result.Compi.Campaign.executed
      result.Compi.Campaign.solver_calls jobs
      (Compi.Runner.exec_mode_name exec_mode);
    if schedules then
      Printf.printf "schedules       on (choice-point depth %d)\n" schedule_depth;
    (match checkpoint with
    | Some dir ->
      Printf.printf "checkpoint      %s (%d write(s))%s\n"
        (Compi.Checkpoint.file ~dir)
        result.Compi.Campaign.checkpoints_written
        (if result.Compi.Campaign.interrupted then
           ", campaign interrupted — resume with --resume"
         else "")
    | None -> ());
    (match result.Compi.Campaign.cache with
    | Some cs ->
      let probes = cs.Smt.Cache.hits + cs.Smt.Cache.misses in
      Printf.printf
        "solver cache    %d hit(s) / %d probe(s)%s, %d entr%s, %d eviction(s)\n"
        cs.Smt.Cache.hits probes
        (if probes = 0 then ""
         else
           Printf.sprintf " (%.0f%% hit rate)"
             (100.0 *. float_of_int cs.Smt.Cache.hits /. float_of_int probes))
        cs.Smt.Cache.entries
        (if cs.Smt.Cache.entries = 1 then "y" else "ies")
        cs.Smt.Cache.evictions
    | None -> Printf.printf "solver cache    off\n");
    (match status_file with
    | Some path -> Printf.printf "final status snapshot at %s\n" path
    | None -> ());
    (match ledger with
    | Some path -> Printf.printf "run recorded in ledger %s\n" path
    | None -> ());
    match coverage_report with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Compi.Campaign.coverage_report result));
      Printf.printf "coverage report written to %s\n" path
    | None -> ()
  in
  let man =
    [
      `S s_execution;
      `P
        "What runs and for how long: the target, the iteration/time budget, the \
         search strategy, the executor ($(b,--exec-mode)) and the initial process \
         count.";
      `S s_parallelism;
      `P
        "The parallel campaign engine: worker domains, dispatch batch and the \
         solver cache. None of these change the campaign's result.";
      `S s_checkpoint;
      `P "Crash-safe snapshots and resumption.";
      `S s_telemetry;
      `P
        "Structured event streams, metrics snapshots and canonical reports for \
         $(b,compi-cli explain)/$(b,report)/$(b,profile).";
    ]
  in
  Cmd.v
    (Cmd.info "run" ~man
       ~doc:
         "Run a COMPI campaign on the parallel engine ($(b,--jobs), \
          $(b,--solver-cache)) with structured telemetry \
          ($(b,--trace-events)/$(b,--metrics)); like $(b,test) but the target is \
          named with $(b,--target)")
    Term.(
      const run $ target_opt_arg $ iterations_arg ~docs:s_execution ()
      $ time_arg ~docs:s_execution () $ seed_arg ~docs:s_execution ()
      $ nprocs_arg ~docs:s_execution () $ cap_arg ~docs:s_execution ()
      $ strategy_arg ~docs:s_execution () $ exec_mode_arg ~docs:s_execution ()
      $ schedules_arg $ schedule_depth_arg
      $ jobs_arg $ batch_arg $ solver_cache_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ coverage_report_arg $ status_file_arg $ run_ledger_arg
      $ trace_events_arg ~docs:s_telemetry () $ metrics_arg ~docs:s_telemetry ())

(* ------------------------------------------------------------------ *)
(* replay: saved test cases, or a JSONL telemetry trace                *)
(* ------------------------------------------------------------------ *)

(* Load a JSONL trace into the observatory fold. All replay/explain/
   report analytics live in {!Obs.Fold}; the CLI only renders. *)
let load_fold path =
  let lines =
    try In_channel.with_open_text path In_channel.input_lines
    with Sys_error e ->
      Printf.eprintf "cannot read %s: %s\n" path e;
      exit 1
  in
  let f = Obs.Fold.of_lines lines in
  if f.Obs.Fold.events = 0 then begin
    Printf.eprintf "%s: no parseable telemetry events\n" path;
    exit 1
  end;
  f

(* Annotate branch ids with the owning conditional and function when a
   target is named — "27 = cond 13 T in diffuse" beats a bare number. *)
let branch_labeler = function
  | None -> string_of_int
  | Some (t : Targets.Registry.t) ->
    let info = Targets.Registry.instrument t in
    let funcs = info.Minic.Branchinfo.func_of_cond in
    fun br ->
      let cond, dir = Minic.Branchinfo.cond_of_branch br in
      if cond >= 0 && cond < Array.length funcs then
        Printf.sprintf "%d (cond %d %s in %s)" br cond
          (if dir then "T" else "F")
          funcs.(cond)
      else string_of_int br

let replay_trace path =
  let f = load_fold path in
  (* surface forward-compatibility skips loudly: a trace from a newer
     build replays, but silently dropping its events would make the
     report lie by omission *)
  (match f.Obs.Fold.unknown_kinds with
  | [] -> ()
  | skipped ->
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 skipped in
    Printf.eprintf
      "warning: %s: skipped %d event(s) of %d unknown kind(s) (%s) — likely a \
       trace from a newer build; counts below exclude them\n"
      path total (List.length skipped)
      (String.concat ", " (List.map fst skipped)));
  Printf.printf "trace %s:\n" path;
  print_string (Obs.Fold.to_text f)

(* A telemetry trace is a JSONL stream of {"ev":…} objects; saved test
   cases use a different format. Sniff the first non-blank line. *)
let is_trace_file path =
  match In_channel.with_open_text path In_channel.input_line with
  | Some line -> (
    match Obs.Json.parse (String.trim line) with
    | Ok j -> Obs.Json.member "ev" j <> None
    | Error _ -> false)
  | None | (exception Sys_error _) -> false

let replay_cmd =
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH") in
  let run path =
    if is_trace_file path then replay_trace path
    else
    match Compi.Testcase.load ~path with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 1
    | Ok cases ->
      List.iteri
        (fun k (c : Compi.Testcase.t) ->
          match Targets.Catalog.find c.Compi.Testcase.target with
          | None -> Printf.printf "case %d: unknown target %s\n" k c.Compi.Testcase.target
          | Some t -> (
            let info = Targets.Registry.instrument t in
            Printf.printf "case %d (%s, np=%d):\n" k c.Compi.Testcase.target
              c.Compi.Testcase.nprocs;
            match Compi.Testcase.replay c ~info () with
            | Error (`Platform_limit n) -> Printf.printf "  platform limit (%d procs)\n" n
            | Ok [] -> Printf.printf "  clean run (bug did not reproduce)\n"
            | Ok faults ->
              List.iter
                (fun (rank, f) ->
                  Printf.printf "  rank %d: %s\n" rank (Minic.Fault.to_string f))
                faults))
        cases
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay saved test cases (bug reproduction), or reconstruct the coverage \
          curve and phase breakdown from a $(b,--trace-events) JSONL file")
    Term.(const run $ path_arg)

(* ------------------------------------------------------------------ *)
(* explain / report: the campaign observatory                          *)
(* ------------------------------------------------------------------ *)

let trace_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl")

let label_target_arg =
  Arg.(
    value
    & opt (some target_conv) None
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          "Annotate branch ids with their conditional, direction and function \
           (see $(b,compi-cli list))")

(* Root-first causal chain: seed → … → the test itself. *)
let print_chain (f : Obs.Fold.t) label tid =
  match Obs.Fold.chain f tid with
  | [] ->
    Printf.printf "test %d: not in this trace\n" tid;
    exit 1
  | nodes ->
    List.iter
      (fun (n : Obs.Fold.lineage_node) ->
        match n.Obs.Fold.ln_origin with
        | "negated" ->
          Printf.printf
            "  test %d <- negating constraint %d of test %d, targeting branch %s%s\n"
            n.Obs.Fold.ln_test n.Obs.Fold.ln_index n.Obs.Fold.ln_parent
            (label n.Obs.Fold.ln_branch)
            (if n.Obs.Fold.ln_cached then " [cached verdict]" else " [solver sat]")
        | "schedule" ->
          (* the (input, schedule) pair: same inputs as the parent, one
             wildcard match decision flipped *)
          Printf.printf
            "  test %d <- schedule fork of test %d: same inputs, wildcard choice \
             point %d delivers from local rank %d instead\n"
            n.Obs.Fold.ln_test n.Obs.Fold.ln_parent n.Obs.Fold.ln_index
            n.Obs.Fold.ln_branch
        | origin ->
          Printf.printf "  test %d: %s (fresh random inputs)\n" n.Obs.Fold.ln_test
            origin)
      (List.rev nodes)

let explain_branch (f : Obs.Fold.t) label br =
  match Obs.Fold.first_test_for_branch f br with
  | Some tid ->
    Printf.printf "branch %s: first covered by test %d, derived as:\n" (label br) tid;
    print_chain f label tid
  | None -> (
    match
      List.find_opt (fun s -> s.Obs.Fold.br_branch = br) f.Obs.Fold.branches
    with
    | None ->
      Printf.printf
        "branch %s: never targeted by a negation in this trace (either already \
         covered by chance, or never adjacent to an executed path)\n"
        (label br)
    | Some s ->
      Printf.printf "branch %s: plateau — %d negation attempt(s), no test reached it\n"
        (label br) s.Obs.Fold.br_attempts;
      Printf.printf "  verdicts: %d sat, %d unsat, %d unknown (%d from cache)\n"
        s.Obs.Fold.br_sat s.Obs.Fold.br_unsat s.Obs.Fold.br_unknown
        s.Obs.Fold.br_cached;
      if s.Obs.Fold.br_unsat = s.Obs.Fold.br_attempts then
        Printf.printf
          "  diagnosis: every attempt was unsat — the flip is infeasible along all \
           observed path prefixes\n"
      else if s.Obs.Fold.br_unknown > 0 && s.Obs.Fold.br_sat = 0 then
        Printf.printf
          "  diagnosis: solver gave up (%d unknown) — consider raising the solver \
           budget\n"
          s.Obs.Fold.br_unknown
      else if s.Obs.Fold.br_sat > 0 then
        Printf.printf
          "  diagnosis: %d sat verdict(s) produced derived tests, but none executed \
           this branch — the negated prefix did not pin the path (or the budget cut \
           the run)\n"
          s.Obs.Fold.br_sat)

let explain_summary (f : Obs.Fold.t) label =
  (match Obs.Fold.lineage_errors f with
  | [] -> ()
  | errs ->
    Printf.printf "lineage invariant violations (%d):\n" (List.length errs);
    List.iter (fun e -> Printf.printf "  %s\n" e) errs;
    print_newline ());
  let nodes = f.Obs.Fold.lineage in
  let count o = List.length (List.filter (fun n -> n.Obs.Fold.ln_origin = o) nodes) in
  Printf.printf "lineage: %d test(s) — %d seed, %d negated, %d schedule, %d restart\n"
    (List.length nodes) (count "seed") (count "negated") (count "schedule")
    (count "restart");
  let covered =
    List.filter (fun s -> s.Obs.Fold.br_first_test >= 0) f.Obs.Fold.branches
  in
  let plateau =
    List.filter
      (fun s -> s.Obs.Fold.br_first_test < 0 && s.Obs.Fold.br_attempts > 0)
      f.Obs.Fold.branches
  in
  Printf.printf "branches targeted by negations: %d reached, %d plateaued\n"
    (List.length covered) (List.length plateau);
  (match covered with
  | [] -> ()
  | s :: _ ->
    Printf.printf "\ndeepest example — branch %s:\n" (label s.Obs.Fold.br_branch);
    (* show the longest chain among first-covering tests *)
    let best =
      List.fold_left
        (fun (bt, bd) c ->
          let d = List.length (Obs.Fold.chain f c.Obs.Fold.br_first_test) in
          if d > bd then (c.Obs.Fold.br_first_test, d) else (bt, bd))
        (s.Obs.Fold.br_first_test, 0)
        covered
    in
    print_chain f label (fst best));
  if plateau <> [] then begin
    Printf.printf "\nplateau branches (try --branch ID for a diagnosis):\n";
    List.iteri
      (fun i s ->
        if i < 12 then
          Printf.printf "  branch %s — %d attempt(s), %d unsat, %d unknown\n"
            (label s.Obs.Fold.br_branch) s.Obs.Fold.br_attempts s.Obs.Fold.br_unsat
            s.Obs.Fold.br_unknown)
      plateau;
    if List.length plateau > 12 then
      Printf.printf "  ... %d more\n" (List.length plateau - 12)
  end

let explain_cmd =
  let branch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "branch" ] ~docv:"ID"
          ~doc:"Explain how branch $(docv) was covered — or why it never was")
  in
  let testcase_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "testcase" ] ~docv:"ID"
          ~doc:"Print the seed-to-test derivation chain of test case $(docv)")
  in
  let run path branch testcase target =
    let f = load_fold path in
    let label = branch_labeler target in
    match (branch, testcase) with
    | Some br, _ -> explain_branch f label br
    | None, Some tid ->
      Printf.printf "test %d derivation:\n" tid;
      print_chain f label tid
    | None, None -> explain_summary f label
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a campaign from its $(b,--trace-events) JSONL: the causal \
          seed-to-branch chain behind a test case or a covered branch \
          ($(b,--testcase)/$(b,--branch)), and plateau diagnoses for branches \
          whose negations never produced a covering test")
    Term.(const run $ trace_pos_arg $ branch_arg $ testcase_arg $ label_target_arg)

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE.html"
        ~doc:
          "Write a self-contained HTML report (inline CSS + SVG, no scripts) to \
           $(docv); without it the ASCII report goes to stdout")

let stable_arg =
  Arg.(
    value & flag
    & info [ "stable" ]
        ~doc:
          "Drop wall-clock-derived lines and worker/checkpoint census rows so the \
           report is byte-identical across $(b,--jobs) values and re-runs")

let report_cmd =
  let run path out stable target =
    let f = load_fold path in
    let branch_label = branch_labeler target in
    match out with
    | Some file ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (Obs.Fold.to_html ~stable ~branch_label f));
      Printf.printf "report written to %s (%d events)\n" file f.Obs.Fold.events
    | None -> print_string (Obs.Fold.to_text ~stable ~branch_label f)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Fold a $(b,--trace-events) JSONL trace into a campaign report: coverage \
          curve, per-branch hit table, solver/cache breakdown, rank-by-rank \
          communication matrix, lineage summary and deadlock witnesses — HTML with \
          $(b,--out), ASCII otherwise")
    Term.(const run $ trace_pos_arg $ report_out_arg $ stable_arg $ label_target_arg)

let profile_cmd =
  let run path out stable =
    let f = load_fold path in
    if f.Obs.Fold.spans = [] then begin
      Printf.eprintf
        "%s: no spans in this trace (re-run the campaign with --trace-events \
         using this build to record them)\n"
        path;
      exit 1
    end;
    match out with
    | Some file ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (Obs.Fold.profile_html ~stable f));
      Printf.printf "profile written to %s (%d spans)\n" file
        (List.length f.Obs.Fold.spans)
    | None -> print_string (Obs.Fold.profile_text ~stable f)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Fold the timeline spans of a $(b,--trace-events) JSONL trace into a \
          performance profile: per-kind wall breakdown, per-worker utilization, \
          merge-barrier stall, cache-lock contention and per-round critical path — \
          HTML with a Gantt timeline via $(b,--out), ASCII otherwise")
    Term.(const run $ trace_pos_arg $ report_out_arg $ stable_arg)

(* ------------------------------------------------------------------ *)
(* status / watch: the live campaign monitor                           *)
(* ------------------------------------------------------------------ *)

let status_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"STATUS.json")

let render_status (st : Obs.Status.t) =
  let b = Buffer.create 512 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  add "target          %s" (if st.target = "" then "(unnamed)" else st.target);
  add "progress        %d / %d iteration(s)%s, round %d%s" st.executed st.budget
    (if st.budget > 0 && st.budget < max_int then
       Printf.sprintf " (%.1f%%)"
         (100.0 *. float_of_int st.executed /. float_of_int st.budget)
     else "")
    st.rounds
    (if st.finished then " — finished" else "");
  add "coverage        %d / %d reachable%s" st.covered st.reachable
    (if st.reachable > 0 then
       Printf.sprintf " (%.1f%%)"
         (100.0 *. float_of_int st.covered /. float_of_int st.reachable)
     else "");
  add "bugs            %d" st.bugs;
  add "queue depth     %d" st.queue_depth;
  add "utilization     %.0f%%" (100.0 *. st.utilization);
  add "cache hit rate  %.0f%%" (100.0 *. st.cache_hit_rate);
  add "schedule forks  %d" st.schedule_forks;
  (match (st.plateau, st.eta_iterations) with
  | true, _ -> add "trend           plateau — no coverage gain over the trailing window"
  | false, 0 -> add "trend           fully covered"
  | false, n when n > 0 ->
    add "trend           ~%d iteration(s) to full reachable coverage at the current rate" n
  | false, _ -> add "trend           (not enough history for an estimate)");
  Buffer.contents b

(* One compact line per poll for pipes and logs: `watch` uses it when
   stdout is not a tty, so output appends cleanly. *)
let status_line (st : Obs.Status.t) =
  Printf.sprintf
    "iter %d/%d round %d cov %d/%d bugs %d queue %d util %.0f%% cache %.0f%%%s%s"
    st.executed st.budget st.rounds st.covered st.reachable st.bugs st.queue_depth
    (100.0 *. st.utilization)
    (100.0 *. st.cache_hit_rate)
    (if st.plateau then " plateau"
     else if st.eta_iterations > 0 then Printf.sprintf " eta ~%d" st.eta_iterations
     else "")
    (if st.finished then " finished" else "")

let status_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw snapshot as one JSON object (machine-readable)")
  in
  let run path json =
    match Obs.Status.read path with
    | Error e ->
      Printf.eprintf "cannot read status %s: %s\n" path e;
      exit 1
    | Ok st ->
      if json then print_endline (Obs.Json.to_string (Obs.Status.to_json st))
      else print_string (render_status st)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "One-shot view of a running campaign's $(b,--status-file) snapshot; \
          $(b,--json) emits the raw object for scripts")
    Term.(const run $ status_pos_arg $ json_arg)

let watch_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Poll interval (default 1s)")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Render a single frame and exit")
  in
  let watch_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"TRACE.jsonl"
          ~doc:
            "Also tail the campaign's $(b,--trace-events) file through the \
             incremental observatory fold: each poll absorbs only the newly \
             appended lines and re-renders the live coverage curve")
  in
  let run path interval once trace =
    let interval = if interval < 0.05 then 0.05 else interval in
    let tty = Unix.isatty Unix.stdout in
    (* incremental fold over the growing trace: the state persists
       across polls, each poll steps only the bytes appended since the
       last one (complete lines only — a torn tail waits for the next
       poll) *)
    let fstate = Obs.Fold.init () in
    let offset = ref 0 in
    let tail_trace () =
      match trace with
      | None -> None
      | Some tp -> (
        (match open_in_bin tp with
        | exception Sys_error _ -> ()
        | ic ->
          let len = in_channel_length ic in
          if len > !offset then begin
            seek_in ic !offset;
            let chunk = really_input_string ic (len - !offset) in
            match String.rindex_opt chunk '\n' with
            | None -> ()
            | Some k ->
              offset := !offset + k + 1;
              List.iter
                (fun l -> ignore (Obs.Fold.step_line fstate l))
                (String.split_on_char '\n' (String.sub chunk 0 k))
          end;
          close_in ic);
        Some (Obs.Fold.finish fstate))
    in
    let render_frame st fopt =
      let b = Buffer.create 1024 in
      Buffer.add_string b (render_status st);
      (match fopt with
      | None -> ()
      | Some (f : Obs.Fold.t) ->
        Buffer.add_string b
          (Printf.sprintf "trace           %d event(s), %d iteration(s), %d fault(s)\n"
             f.Obs.Fold.events f.Obs.Fold.iterations
             (List.length f.Obs.Fold.faults));
        if f.Obs.Fold.curve <> [] then begin
          Buffer.add_char b '\n';
          Buffer.add_string b (Obs.Fold.ascii_curve f.Obs.Fold.curve)
        end);
      Buffer.contents b
    in
    let rec loop announced =
      match Obs.Status.read path with
      | Error e ->
        if once then begin
          Printf.eprintf "cannot read status %s: %s\n" path e;
          exit 1
        end;
        (* the campaign may not have published its first snapshot yet *)
        if not announced then Printf.eprintf "waiting for %s\n%!" path;
        Unix.sleepf interval;
        loop true
      | Ok st ->
        let fopt = tail_trace () in
        if tty && not once then
          (* full-screen dashboard: home + clear, then redraw *)
          print_string ("\027[H\027[2J" ^ render_frame st fopt)
        else if tty || once then print_string (render_frame st fopt)
        else print_endline (status_line st);
        flush stdout;
        if not (once || st.Obs.Status.finished) then begin
          Unix.sleepf interval;
          loop announced
        end
    in
    loop false
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Live dashboard for a campaign started with $(b,--status-file): polls \
          the snapshot (and, with $(b,--trace), tails the event stream through \
          the incremental fold) until the campaign finishes. Full-screen on a \
          tty; one compact line per poll otherwise")
    Term.(const run $ status_pos_arg $ interval_arg $ once_arg $ watch_trace_arg)

(* ------------------------------------------------------------------ *)
(* history / compare: the run ledger                                   *)
(* ------------------------------------------------------------------ *)

let load_ledger path =
  match Obs.Ledger.load path with
  | Error e ->
    Printf.eprintf "cannot read ledger %s: %s\n" path e;
    exit 1
  | Ok store ->
    if store.Obs.Ledger.skipped > 0 then
      Printf.eprintf
        "warning: %s: skipped %d record(s) of a newer ledger version\n" path
        store.Obs.Ledger.skipped;
    if store.Obs.Ledger.malformed > 0 then
      Printf.eprintf "warning: %s: %d malformed line(s)\n" path
        store.Obs.Ledger.malformed;
    store

let history_cmd =
  let ledger_pos_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER.jsonl")
  in
  let target_filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"NAME" ~doc:"Only show runs of target $(docv)")
  in
  let run path target =
    let store = load_ledger path in
    let records =
      match target with
      | None -> store.Obs.Ledger.records
      | Some t ->
        List.filter (fun (r : Obs.Ledger.record) -> r.target = t)
          store.Obs.Ledger.records
    in
    if records = [] then begin
      Printf.eprintf "no records%s in %s\n"
        (match target with Some t -> " for target " ^ t | None -> "")
        path;
      exit 1
    end;
    Printf.printf "%-18s %-8s %4s %9s %9s %4s %8s %6s %s\n" "run" "mode" "jobs"
      "executed" "coverage" "bugs" "wall" "cache" "trend";
    (* trend column: coverage direction vs the previous run of the same
       target, in ledger (append) order *)
    let prev = Hashtbl.create 8 in
    List.iter
      (fun (r : Obs.Ledger.record) ->
        let trend =
          match Hashtbl.find_opt prev r.target with
          | None -> ""
          | Some c when r.covered > c -> "+"
          | Some c when r.covered < c -> "-"
          | Some _ -> "="
        in
        Hashtbl.replace prev r.target r.covered;
        Printf.printf "%-18s %-8s %4d %9d %5d/%-3d %4d %7.1fs %5.0f%% %s\n" r.run
          r.exec_mode r.jobs r.executed r.covered r.reachable
          (List.length r.bugs) r.wall_s
          (100.0 *. Obs.Ledger.hit_rate r)
          trend)
      records
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "Per-target trend table over a $(b,--ledger) JSONL store: one row per \
          recorded campaign, with a coverage-direction marker against the \
          previous run of the same target")
    Term.(const run $ ledger_pos_arg $ target_filter_arg)

let compare_cmd =
  let sel_arg n docv =
    Arg.(
      required
      & pos n (some string) None
      & info [] ~docv
          ~doc:
            "Run selector: a run id like $(b,heat2d#3), or an index into the \
             ledger ($(b,-1) = latest, negative counts from the end)")
  in
  let ledger_opt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "ledger" ] ~docv:"LEDGER.jsonl" ~doc:"The run-ledger JSONL store")
  in
  let tolerance_arg =
    Arg.(
      value & opt int 0
      & info [ "tolerance" ] ~docv:"N"
          ~doc:
            "Allow coverage to drop by up to $(docv) branch(es) before the exit \
             status reports a regression (default $(b,0))")
  in
  let run sel_a sel_b path tolerance =
    let store = load_ledger path in
    let resolve sel =
      match Obs.Ledger.find store sel with
      | Some r -> r
      | None ->
        Printf.eprintf "no run %s in %s (%d record(s))\n" sel path
          (List.length store.Obs.Ledger.records);
        exit 1
    in
    let a = resolve sel_a in
    let b = resolve sel_b in
    let d = Obs.Ledger.diff ~tolerance a b in
    let describe (r : Obs.Ledger.record) =
      Printf.sprintf "%s (%s, %d job(s), seed %d): covered %d/%d, %d bug(s)" r.run
        r.exec_mode r.jobs r.seed r.covered r.reachable (List.length r.bugs)
    in
    Printf.printf "A  %s\n" (describe a);
    Printf.printf "B  %s\n" (describe b);
    Printf.printf "settings   %s\n"
      (if d.Obs.Ledger.same_settings then
         "identical (fingerprint " ^ a.Obs.Ledger.fingerprint ^ ")"
       else "differ — deltas compare different campaigns");
    let pm n = if n >= 0 then "+" ^ string_of_int n else string_of_int n in
    Printf.printf "coverage   %s branch(es)  (%d -> %d)\n" (pm d.Obs.Ledger.d_covered)
      a.Obs.Ledger.covered b.Obs.Ledger.covered;
    Printf.printf "reachable  %s  (%d -> %d)\n" (pm d.Obs.Ledger.d_reachable)
      a.Obs.Ledger.reachable b.Obs.Ledger.reachable;
    Printf.printf "bugs       %s  (%d -> %d)\n" (pm d.Obs.Ledger.d_bugs)
      (List.length a.Obs.Ledger.bugs)
      (List.length b.Obs.Ledger.bugs);
    Printf.printf "executed   %s  (%d -> %d)\n" (pm d.Obs.Ledger.d_executed)
      a.Obs.Ledger.executed b.Obs.Ledger.executed;
    Printf.printf "wall       %+.2fs  (%.2fs -> %.2fs)  [informational]\n"
      d.Obs.Ledger.d_wall_s a.Obs.Ledger.wall_s b.Obs.Ledger.wall_s;
    Printf.printf "solver     %s call(s)  [informational]\n"
      (pm d.Obs.Ledger.d_solver_calls);
    Printf.printf "cache      %+.1f hit-rate point(s)  [informational]\n"
      (100.0 *. d.Obs.Ledger.d_hit_rate);
    if d.Obs.Ledger.regression then begin
      Printf.printf "verdict    COVERAGE REGRESSION: dropped %d branch(es), tolerance %d\n"
        (-d.Obs.Ledger.d_covered) tolerance;
      exit 1
    end
    else Printf.printf "verdict    ok\n"
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two ledger runs: coverage, bug and perf deltas of B relative to \
          A. Exits non-zero when coverage regressed by more than \
          $(b,--tolerance) branches — wall time and solver work stay \
          informational, so identical-settings runs always compare clean")
    Term.(
      const run $ sel_arg 0 "RUN_A" $ sel_arg 1 "RUN_B" $ ledger_opt_arg
      $ tolerance_arg)

let random_cmd =
  let run t iterations time seed nprocs caps =
    let info, settings =
      settings_of t iterations time seed nprocs caps false false false `Dfs
    in
    report (Compi.Random_testing.run ~settings info)
  in
  Cmd.v
    (Cmd.info "random" ~doc:"Run the random-testing baseline on a target")
    Term.(
      const run $ target_arg $ iterations_arg () $ time_arg () $ seed_arg ()
      $ nprocs_arg () $ cap_arg ())

(* ------------------------------------------------------------------ *)
(* exec: one concrete run                                              *)
(* ------------------------------------------------------------------ *)

let exec_inputs_arg =
  Arg.(
    value & opt_all kv_conv []
    & info [ "input"; "i" ] ~docv:"NAME=VALUE" ~doc:"Set a marked input (repeatable)")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the communication timeline")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE.jsonl"
        ~doc:"Write the communication trace as JSON Lines")

let exec_cmd =
  let run (t : Targets.Registry.t) nprocs inputs trace trace_jsonl =
    let info = Targets.Registry.instrument t in
    let tracer = Mpisim.Trace.create () in
    let tracing = trace || trace_jsonl <> None in
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs = Option.value nprocs ~default:4;
        inputs;
        step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
        on_event = (if tracing then Mpisim.Trace.collector tracer else fun _ -> ());
      }
    in
    match Compi.Runner.run config with
    | Error (`Platform_limit n) -> Printf.printf "platform limit: %d processes\n" n
    | Ok res ->
      Printf.printf "covered %d branches across %d processes in %.1fms\n"
        (Concolic.Coverage.covered_branches res.Compi.Runner.coverage)
        config.Compi.Runner.nprocs
        (1000.0 *. res.Compi.Runner.wall_time);
      (match Compi.Runner.faults res with
      | [] -> Printf.printf "all processes completed cleanly\n"
      | faults ->
        List.iter
          (fun (rank, f) ->
            Printf.printf "rank %d: %s\n" rank (Minic.Fault.to_string f))
          faults);
      if res.Compi.Runner.deadlocked <> [] then
        Printf.printf "deadlocked ranks: %s\n"
          (String.concat ", " (List.map string_of_int res.Compi.Runner.deadlocked));
      if trace then begin
        Printf.printf "\ncommunication trace (%d events):\n" (Mpisim.Trace.length tracer);
        List.iter
          (fun (kind, n) -> Printf.printf "  %-12s %d\n" kind n)
          (Mpisim.Trace.summary tracer);
        print_string (Mpisim.Trace.timeline ~limit:60 tracer)
      end;
      match trace_jsonl with
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Mpisim.Trace.to_jsonl tracer));
        Printf.printf "communication trace written to %s\n" path
      | None -> ()
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute a target once with concrete inputs")
    Term.(
      const run $ target_arg $ nprocs_arg () $ exec_inputs_arg $ trace_arg
      $ trace_jsonl_arg)

(* ------------------------------------------------------------------ *)
(* test-file: campaigns on Mini-C source files                          *)
(* ------------------------------------------------------------------ *)

let test_file_cmd =
  let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc") in
  let run path iterations time seed nprocs caps =
    let src = In_channel.with_open_text path In_channel.input_all in
    match Minic.Parse.program src with
    | Error e ->
      Printf.eprintf "%s: %s\n" path (Format.asprintf "%a" Minic.Parse.pp_error e);
      exit 1
    | Ok program -> (
      match Minic.Check.check program with
      | _ :: _ as errors ->
        List.iter (fun err -> Printf.eprintf "%s: %s\n" path err) errors;
        exit 1
      | [] ->
        let info = Minic.Branchinfo.instrument (Minic.Opt.simplify_program program) in
        Printf.printf "%s: %d branches across %d functions\n\n" path
          info.Minic.Branchinfo.total_branches
          (List.length info.Minic.Branchinfo.funcs);
        let settings =
          {
            Compi.Driver.default_settings with
            Compi.Driver.iterations = (if time = None then iterations else max_int);
            time_budget = time;
            dfs_phase_iters = max 10 (iterations / 10);
            initial_nprocs = Option.value nprocs ~default:4;
            cap_overrides = caps;
            seed;
          }
        in
        report (Compi.Driver.run ~settings info))
  in
  Cmd.v
    (Cmd.info "test-file"
       ~doc:"Parse a Mini-C source file and run a COMPI campaign on it")
    Term.(
      const run $ path_arg $ iterations_arg () $ time_arg () $ seed_arg ()
      $ nprocs_arg () $ cap_arg ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "compi-cli" ~version:"1.0"
      ~doc:"COMPI: concolic testing for MPI applications (OCaml reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            list_cmd; show_cmd; test_cmd; run_cmd; random_cmd; exec_cmd; replay_cmd;
            explain_cmd; report_cmd; profile_cmd; status_cmd; watch_cmd;
            history_cmd; compare_cmd; test_file_cmd;
          ]))
